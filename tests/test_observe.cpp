/**
 * @file
 * xmig-scope integration (sim/observe.hpp): the observatory attached
 * to a real quadcore run must register the full hierarchical counter
 * tree of both machines, sample a coherent time series, and leave
 * valid artifacts on disk.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/observe.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"

namespace xmig {
namespace {

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(ObserveOptions, BuiltFromCliFlags)
{
    const char *argv[] = {"bench",          "--metrics-out", "m.jsonl",
                          "--samples-out",  "s.csv",         "--trace-out",
                          "t.json",         "--sample-every", "500"};
    const BenchOptions opt =
        BenchOptions::parse(9, const_cast<char **>(argv));
    EXPECT_TRUE(opt.observing());
    const ObserveOptions o = observeOptionsOf(opt);
    EXPECT_EQ(o.metricsOut, "m.jsonl");
    EXPECT_EQ(o.samplesOut, "s.csv");
    EXPECT_EQ(o.traceOut, "t.json");
    EXPECT_EQ(o.sampleEvery, 500u);

    const BenchOptions none = BenchOptions::parse(1, nullptr);
    EXPECT_FALSE(none.observing());
    // Unset cadence keeps the sampler default.
    EXPECT_EQ(observeOptionsOf(none).sampleEvery,
              ObserveOptions{}.sampleEvery);
}

TEST(Observatory, FullQuadcoreRunProducesAllArtifacts)
{
    const std::string metrics =
        testing::TempDir() + "xmig_observe_metrics.jsonl";
    const std::string samples =
        testing::TempDir() + "xmig_observe_samples.csv";
    const std::string trace =
        testing::TempDir() + "xmig_observe_trace.json";

    ObserveOptions o;
    o.metricsOut = metrics;
    o.samplesOut = samples;
    o.traceOut = trace;
    o.sampleEvery = 1'000;

    QuadcoreParams p;
    p.instructionsPerBenchmark = 1'000'000;

    QuadcoreRow row;
    {
        RunObservatory obs(o);
        row = runQuadcore("179.art", p, &obs);

        // Hierarchical names for both machines, down to the stats
        // structs that predate the registry.
        const auto &r = obs.registry();
        EXPECT_GT(r.size(), 50u);
        for (const char *path : {
                 "baseline.l2_misses",
                 "baseline.core0.l2.accesses",
                 "machine.refs",
                 "machine.il1.misses",
                 "machine.core3.l2.occupancy",
                 "machine.controller.migrations",
                 "machine.controller.store.evictions",
                 "machine.controller.store.occupancy",
                 "machine.controller.splitter.transitions",
                 "machine.controller.splitter.x.engine.references",
                 "machine.controller.splitter.y_neg.filter.value",
             }) {
            EXPECT_TRUE(r.contains(path)) << path;
        }
        // The sampler copied its rows, so it stays readable after
        // the machines are gone; one tick per reference was fed.
        const auto &s = obs.sampler();
        EXPECT_GT(s.samples(), 100u);
        EXPECT_GT(s.ticks(), p.instructionsPerBenchmark);
        EXPECT_EQ(s.totalSamples(), s.ticks() / o.sampleEvery);
    }

    // Artifacts on disk: JSONL parses line by line...
    const std::string jsonl = slurp(metrics);
    ASSERT_FALSE(jsonl.empty());
    size_t lines = 0, start = 0;
    while (start < jsonl.size()) {
        size_t end = jsonl.find('\n', start);
        if (end == std::string::npos)
            end = jsonl.size();
        EXPECT_TRUE(obs::jsonParseOk(jsonl.substr(start, end - start)));
        ++lines;
        start = end + 1;
    }
    EXPECT_GT(lines, 50u);

    // ...the CSV has a header plus >= 100 rows...
    const std::string csv = slurp(samples);
    ASSERT_FALSE(csv.empty());
    EXPECT_EQ(csv.rfind("t,interval,", 0), 0u);
    size_t rows = 0;
    for (const char c : csv)
        rows += c == '\n' ? 1 : 0;
    EXPECT_GT(rows, 100u);

    // ...and the trace is one well-formed JSON document.
    if (obs::kTraceCompiled) {
        const std::string doc = slurp(trace);
        ASSERT_FALSE(doc.empty());
        EXPECT_TRUE(obs::jsonParseOk(doc));
        EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
        if (row.migrations > 0) {
            EXPECT_NE(doc.find("\"migrate\""), std::string::npos);
        }
    }

    std::remove(metrics.c_str());
    std::remove(samples.c_str());
    std::remove(trace.c_str());
}

TEST(Observatory, NoOutputsMeansNoFilesAndNoSampling)
{
    ObserveOptions o; // everything off
    EXPECT_FALSE(o.any());
    RunObservatory obs(o);

    QuadcoreParams p;
    p.instructionsPerBenchmark = 100'000;
    const QuadcoreRow row = runQuadcore("164.gzip", p, &obs);
    EXPECT_GT(row.instructions, 0u);
    // Metrics still registered (cheap), but nothing sampled.
    EXPECT_GT(obs.registry().size(), 0u);
    EXPECT_EQ(obs.sampler().samples(), 0u);
    EXPECT_FALSE(obs::tracer().enabled());
}

TEST(Observatory, ObservedRunMatchesUnobservedRun)
{
    // Observation must not perturb the simulation: same benchmark,
    // same seed, identical results with and without the observatory.
    QuadcoreParams p;
    p.instructionsPerBenchmark = 300'000;
    const QuadcoreRow plain = runQuadcore("em3d", p);

    ObserveOptions o;
    o.samplesOut = testing::TempDir() + "xmig_observe_same.csv";
    o.sampleEvery = 777;
    RunObservatory obs(o);
    const QuadcoreRow observed = runQuadcore("em3d", p, &obs);

    EXPECT_EQ(plain.instructions, observed.instructions);
    EXPECT_EQ(plain.l1Misses, observed.l1Misses);
    EXPECT_EQ(plain.l2MissesBaseline, observed.l2MissesBaseline);
    EXPECT_EQ(plain.l2Misses4x, observed.l2Misses4x);
    EXPECT_EQ(plain.migrations, observed.migrations);
    std::remove(o.samplesOut.c_str());
}

} // namespace
} // namespace xmig
