/**
 * @file
 * Unit tests for the FIFO and distinct-LRU R-window organizations.
 */

#include <gtest/gtest.h>

#include "core/rwindow.hpp"

namespace xmig {
namespace {

TEST(FifoWindow, FillsBeforeEvicting)
{
    FifoWindow w(3);
    WindowSlot evicted;
    EXPECT_FALSE(w.push(1, 10, &evicted));
    EXPECT_FALSE(w.push(2, 20, &evicted));
    EXPECT_FALSE(w.push(3, 30, &evicted));
    EXPECT_TRUE(w.full());
    EXPECT_EQ(w.size(), 3u);
}

TEST(FifoWindow, EvictsInInsertionOrder)
{
    FifoWindow w(3);
    WindowSlot evicted;
    w.push(1, 10, &evicted);
    w.push(2, 20, &evicted);
    w.push(3, 30, &evicted);
    EXPECT_TRUE(w.push(4, 40, &evicted));
    EXPECT_EQ(evicted.line, 1u);
    EXPECT_EQ(evicted.ie, 10);
    EXPECT_TRUE(w.push(5, 50, &evicted));
    EXPECT_EQ(evicted.line, 2u);
}

TEST(FifoWindow, AllowsDuplicates)
{
    FifoWindow w(3);
    WindowSlot evicted;
    w.push(7, 1, &evicted);
    w.push(7, 2, &evicted);
    w.push(7, 3, &evicted);
    EXPECT_TRUE(w.push(8, 4, &evicted));
    EXPECT_EQ(evicted.line, 7u);
    EXPECT_EQ(evicted.ie, 1); // oldest duplicate leaves first
}

TEST(FifoWindow, FindReturnsMostRecentSlot)
{
    FifoWindow w(4);
    WindowSlot evicted;
    w.push(7, 1, &evicted);
    w.push(9, 2, &evicted);
    w.push(7, 3, &evicted);
    const WindowSlot *slot = w.find(7);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->ie, 3);
    EXPECT_EQ(w.find(42), nullptr);
}

TEST(FifoWindow, ForEachVisitsOldestFirst)
{
    FifoWindow w(3);
    WindowSlot evicted;
    w.push(1, 0, &evicted);
    w.push(2, 0, &evicted);
    w.push(3, 0, &evicted);
    w.push(4, 0, &evicted); // evicts 1
    std::vector<uint64_t> order;
    w.forEach([&](const WindowSlot &s) { order.push_back(s.line); });
    EXPECT_EQ(order, (std::vector<uint64_t>{2, 3, 4}));
}

TEST(DistinctLruWindow, RejectsDuplicatesByDesign)
{
    DistinctLruWindow w(3);
    WindowSlot evicted;
    w.insert(1, 10, &evicted);
    EXPECT_TRUE(w.contains(1));
    EXPECT_EQ(w.ieOf(1), 10);
    EXPECT_FALSE(w.contains(2));
}

TEST(DistinctLruWindow, EvictsLru)
{
    DistinctLruWindow w(3);
    WindowSlot evicted;
    w.insert(1, 10, &evicted);
    w.insert(2, 20, &evicted);
    w.insert(3, 30, &evicted);
    w.touch(1); // 2 becomes LRU
    EXPECT_TRUE(w.insert(4, 40, &evicted));
    EXPECT_EQ(evicted.line, 2u);
    EXPECT_TRUE(w.contains(1));
    EXPECT_FALSE(w.contains(2));
}

TEST(DistinctLruWindow, SizeAndCapacity)
{
    DistinctLruWindow w(2);
    WindowSlot evicted;
    EXPECT_EQ(w.size(), 0u);
    w.insert(1, 0, &evicted);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_FALSE(w.full());
    w.insert(2, 0, &evicted);
    EXPECT_TRUE(w.full());
    EXPECT_EQ(w.capacity(), 2u);
}

TEST(DistinctLruWindow, ForEachVisitsOldestFirst)
{
    DistinctLruWindow w(3);
    WindowSlot evicted;
    w.insert(1, 0, &evicted);
    w.insert(2, 0, &evicted);
    w.insert(3, 0, &evicted);
    w.touch(1);
    std::vector<uint64_t> order;
    w.forEach([&](const WindowSlot &s) { order.push_back(s.line); });
    EXPECT_EQ(order, (std::vector<uint64_t>{2, 3, 1}));
}

} // namespace
} // namespace xmig
