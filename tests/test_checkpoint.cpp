/**
 * @file
 * xmig-iron checkpoint/restore tests: engine, controller, and machine
 * state capture; continuation equivalence; and death tests proving
 * that a tampered checkpoint is caught by the paranoid audits rather
 * than trusted silently.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/engine.hpp"
#include "core/shadow_audit.hpp"
#include "fault/fault_injector.hpp"
#include "core/migration_controller.hpp"
#include "mem/ref.hpp"
#include "multicore/machine.hpp"
#include "util/contracts.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

EngineConfig
engineConfig()
{
    EngineConfig ec;
    ec.windowSize = 64;
    return ec;
}

MigrationControllerConfig
controllerConfig()
{
    MigrationControllerConfig c;
    c.numCores = 4;
    c.windowX = 64;
    c.windowY = 32;
    c.filterBits = 18;
    return c;
}

TEST(EngineCheckpoint, RestoredEngineContinuesIdentically)
{
    const EngineConfig ec = engineConfig();
    UnboundedOeStore store_a(ec.affinityBits);
    AffinityEngine a(ec, store_a);
    CircularStream s1(2000);
    for (int i = 0; i < 100'000; ++i)
        a.reference(s1.next());

    const EngineCheckpoint ckpt = a.checkpoint();
    EXPECT_EQ(ckpt.references, 100'000u);
    EXPECT_EQ(ckpt.delta, a.delta());
    EXPECT_EQ(ckpt.windowAffinity, a.windowAffinity());
    ASSERT_LE(ckpt.window.size(), ec.windowSize);

    // Rebuild engine + store state in a fresh pair and continue both
    // with the same stream suffix: every outcome must agree.
    UnboundedOeStore store_b(ec.affinityBits);
    std::vector<OeEntrySnapshot> entries;
    store_a.snapshotEntries(entries);
    store_b.restoreEntries(entries, store_a.stats());
    AffinityEngine b(ec, store_b);
    b.restore(ckpt);

    CircularStream s2(2000);
    for (int i = 0; i < 100'000; ++i)
        s2.next(); // advance to the checkpoint position
    for (int i = 0; i < 100'000; ++i) {
        const uint64_t line = s1.next();
        ASSERT_EQ(s2.next(), line);
        const RefOutcome oa = a.reference(line);
        const RefOutcome ob = b.reference(line);
        ASSERT_EQ(oa.ae, ob.ae) << "diverged at ref " << i;
        ASSERT_EQ(a.delta(), b.delta());
        ASSERT_EQ(a.windowAffinity(), b.windowAffinity());
    }
}

TEST(EngineCheckpoint, RestoreDisarmsTheShadowOracle)
{
    EngineConfig ec = engineConfig();
    ec.shadow = ShadowMode::Armed;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    CircularStream s(500);
    for (int i = 0; i < 10'000; ++i)
        engine.reference(s.next());
    ASSERT_NE(engine.shadow(), nullptr);
    EXPECT_TRUE(engine.shadow()->armed());
    engine.restore(engine.checkpoint());
    EXPECT_FALSE(engine.shadow()->armed());
    // Still consistent: keeps running without tripping any audit.
    for (int i = 0; i < 10'000; ++i)
        engine.reference(s.next());
}

TEST(ControllerCheckpoint, RestoredControllerContinuesIdentically)
{
    const MigrationControllerConfig cfg = controllerConfig();
    MigrationController a(cfg);
    CircularStream s1(4000);
    for (int i = 0; i < 300'000; ++i)
        a.onRequest(s1.next());

    const ControllerCheckpoint ckpt = a.checkpoint();
    EXPECT_EQ(ckpt.numCores, 4u);
    EXPECT_EQ(ckpt.splitWays, 4u);
    EXPECT_EQ(ckpt.activeCore, a.activeCore());
    EXPECT_EQ(ckpt.stats.requests, 300'000u);

    MigrationController b(cfg);
    b.restore(ckpt);
    EXPECT_EQ(b.activeCore(), a.activeCore());
    EXPECT_EQ(b.subset(), a.subset());
    EXPECT_EQ(b.stats().migrations, a.stats().migrations);

    CircularStream s2(4000);
    for (int i = 0; i < 300'000; ++i)
        s2.next();
    for (int i = 0; i < 200'000; ++i) {
        const uint64_t line = s1.next();
        ASSERT_EQ(s2.next(), line);
        ASSERT_EQ(a.onRequest(line), b.onRequest(line))
            << "diverged at request " << i;
    }
    EXPECT_EQ(a.stats().transitions, b.stats().transitions);
    EXPECT_EQ(a.stats().migrations, b.stats().migrations);
    EXPECT_EQ(a.stats().filterUpdates, b.stats().filterUpdates);
}

TEST(ControllerCheckpoint, CapturesDegradedTopology)
{
    const MigrationControllerConfig cfg = controllerConfig();
    MigrationController a(cfg);
    CircularStream s(4000);
    for (int i = 0; i < 200'000; ++i)
        a.onRequest(s.next());
    a.setCoreOffline(2);
    for (int i = 0; i < 100'000; ++i)
        a.onRequest(s.next());

    const ControllerCheckpoint ckpt = a.checkpoint();
    EXPECT_EQ(ckpt.splitWays, 2u);
    EXPECT_EQ(ckpt.liveMask, 0b1011u);
    EXPECT_EQ(ckpt.recovery.coresLost, 1u);

    MigrationController b(cfg);
    b.restore(ckpt);
    EXPECT_EQ(b.liveCores(), 3u);
    EXPECT_EQ(b.splitWays(), 2u);
    EXPECT_EQ(b.recovery().coresLost, 1u);
    for (unsigned sub = 0; sub < 2; ++sub)
        EXPECT_EQ(b.coreForSubset(sub), a.coreForSubset(sub));
    for (int i = 0; i < 50'000; ++i) {
        const uint64_t line = s.next();
        ASSERT_EQ(a.onRequest(line), b.onRequest(line));
    }
}

TEST(ControllerCheckpoint, BoundedStoreRoundTrips)
{
    MigrationControllerConfig cfg = controllerConfig();
    cfg.boundedStore = true;
    cfg.affinityCache.entries = 1024;
    cfg.affinityCache.ways = 4;
    cfg.affinityCache.skewed = true;
    MigrationController a(cfg);
    // Working set small enough to live in the 1024-entry cache, so the
    // splitter actually converges to a multi-core split.
    CircularStream s1(800);
    for (int i = 0; i < 300'000; ++i)
        a.onRequest(s1.next());

    const ControllerCheckpoint ckpt = a.checkpoint();
    EXPECT_EQ(ckpt.storeStats.lookups, a.store().stats().lookups);

    MigrationController b(cfg);
    b.restore(ckpt);
    // A skewed-cache restore may shed conflict victims (greedy
    // re-insertion into a skewed cache can displace already-restored
    // lines), so bit-identity is not guaranteed; what must hold is
    // that the control plane restored exactly and the controller
    // keeps running consistently — every audit stays green.
    EXPECT_EQ(b.activeCore(), a.activeCore());
    EXPECT_EQ(b.stats().migrations, a.stats().migrations);
    CircularStream s2(800);
    for (int i = 0; i < 300'000; ++i)
        s2.next();
    std::set<unsigned> used;
    for (int i = 0; i < 200'000; ++i)
        used.insert(b.onRequest(s2.next()));
    EXPECT_GE(used.size(), 2u);
}

TEST(MachineCheckpoint, RestoreIsDeterministic)
{
    MachineConfig cfg;
    cfg.numCores = 4;
    MigrationMachine a(cfg);
    CircularStream s(20'000);
    for (uint64_t i = 0; i < 150'000; ++i) {
        a.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        const uint64_t addr = s.next() * 64;
        a.access(i % 4 == 0 ? MemRef::store(addr)
                            : MemRef::load(addr));
    }
    const MachineCheckpoint ckpt = a.checkpoint();
    EXPECT_EQ(ckpt.stats.refs, a.stats().refs);
    EXPECT_EQ(ckpt.activeCore, a.activeCore());
    ASSERT_EQ(ckpt.l2Contents.size(), 4u);
    EXPECT_TRUE(ckpt.hasController);

    // Two fresh machines restored from the same record and fed the
    // same suffix must stay bit-identical to each other.
    MigrationMachine b(cfg), c(cfg);
    b.restore(ckpt);
    c.restore(ckpt);
    EXPECT_EQ(b.activeCore(), a.activeCore());
    EXPECT_EQ(b.stats().l2Misses, a.stats().l2Misses);
    EXPECT_EQ(b.countMultiModifiedLines(), 0u);

    CircularStream sb(20'000), sc(20'000);
    for (uint64_t i = 0; i < 150'000; ++i) {
        sb.next();
        sc.next();
    }
    for (uint64_t i = 0; i < 100'000; ++i) {
        const MemRef ifetch =
            MemRef::ifetch(0x400000 + ((i + 150'000) % 4096) * 4);
        b.access(ifetch);
        c.access(ifetch);
        const uint64_t addr = sb.next() * 64;
        ASSERT_EQ(sc.next() * 64, addr);
        const MemRef data = (i + 150'000) % 4 == 0
                                ? MemRef::store(addr)
                                : MemRef::load(addr);
        b.access(data);
        c.access(data);
    }
    EXPECT_EQ(b.stats().l2Misses, c.stats().l2Misses);
    EXPECT_EQ(b.stats().migrations, c.stats().migrations);
    EXPECT_EQ(b.activeCore(), c.activeCore());
    EXPECT_EQ(b.countMultiModifiedLines(), 0u);
}

TEST(ControllerCheckpoint, RestoredDegradedControllerCanRejoin)
{
    // Checkpoint *between* a core_off and its core_on: the restored
    // controller must come back with the degraded mask and accept
    // the rejoin later, accumulating recovery counters on top of the
    // restored values.
    const MigrationControllerConfig cfg = controllerConfig();
    MigrationController a(cfg);
    CircularStream s(4000);
    for (int i = 0; i < 200'000; ++i)
        a.onRequest(s.next());
    a.setCoreOffline(1);
    for (int i = 0; i < 100'000; ++i)
        a.onRequest(s.next());

    const ControllerCheckpoint ckpt = a.checkpoint();
    ASSERT_EQ(ckpt.liveMask, 0b1101u);
    ASSERT_EQ(ckpt.recovery.coresLost, 1u);
    ASSERT_EQ(ckpt.recovery.coresJoined, 0u);

    MigrationController b(cfg);
    b.restore(ckpt);
    ASSERT_EQ(b.liveCores(), 3u);
    b.setCoreOnline(1);
    EXPECT_EQ(b.liveCores(), 4u);
    EXPECT_EQ(b.splitWays(), 4u);
    EXPECT_EQ(b.recovery().coresLost, 1u) << "restored value kept";
    EXPECT_EQ(b.recovery().coresJoined, 1u);
    EXPECT_GE(b.recovery().resplits, ckpt.recovery.resplits + 1);
    // Keeps running with every audit green on the rejoined split.
    std::set<unsigned> used;
    for (int i = 0; i < 200'000; ++i)
        used.insert(b.onRequest(s.next()));
    EXPECT_GE(used.size(), 2u);
}

TEST(MachineCheckpoint, RestoreIntoDegradedLiveMask)
{
    // The fuzz harness's checkpoint oracle in miniature, pinned to
    // the nastiest spot: the checkpoint lands while a core is
    // unplugged, and the restored machines later accept its rejoin.
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan = "seed=4;at=60000:core_off=1";
    MigrationMachine a(cfg);
    CircularStream s(20'000);
    for (uint64_t i = 0; i < 75'000; ++i) {
        a.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        const uint64_t addr = s.next() * 64;
        a.access(i % 4 == 0 ? MemRef::store(addr)
                            : MemRef::load(addr));
    }
    ASSERT_EQ(a.stats().coreOffEvents, 1u);

    const MachineCheckpoint ckpt = a.checkpoint();
    ASSERT_TRUE(ckpt.hasController);
    ASSERT_EQ(ckpt.controller.liveMask, 0b1101u);
    ASSERT_EQ(ckpt.controller.splitWays, 2u);

    // Restore into fresh machines whose (fresh, tick-0) injectors
    // schedule the rejoin: a restore into a *degraded* live mask
    // that later heals back to the full split.
    MachineConfig cfg2 = cfg;
    cfg2.faultPlan = "seed=4;at=50000:core_on=1";
    MigrationMachine b(cfg2), c(cfg2);
    b.restore(ckpt);
    c.restore(ckpt);
    ASSERT_EQ(b.controller()->liveCores(), 3u);
    ASSERT_EQ(b.controller()->splitWays(), 2u);
    EXPECT_EQ(b.activeCore(), a.activeCore());

    CircularStream sb(20'000), sc(20'000);
    for (uint64_t i = 0; i < 75'000; ++i) {
        sb.next();
        sc.next();
    }
    for (uint64_t i = 75'000; i < 150'000; ++i) {
        const MemRef ifetch =
            MemRef::ifetch(0x400000 + (i % 4096) * 4);
        b.access(ifetch);
        c.access(ifetch);
        const uint64_t addr = sb.next() * 64;
        ASSERT_EQ(sc.next() * 64, addr);
        const MemRef data = i % 4 == 0 ? MemRef::store(addr)
                                       : MemRef::load(addr);
        b.access(data);
        c.access(data);
    }

    // The rejoin fired on both restored machines...
    EXPECT_EQ(b.stats().coreOnEvents, 1u);
    EXPECT_EQ(b.controller()->liveCores(), 4u);
    EXPECT_EQ(b.controller()->splitWays(), 4u);
    // ...and they stayed bit-identical to each other throughout.
    EXPECT_EQ(b.stats().l2Misses, c.stats().l2Misses);
    EXPECT_EQ(b.stats().migrations, c.stats().migrations);
    EXPECT_EQ(b.stats().coreOnEvents, c.stats().coreOnEvents);
    EXPECT_EQ(b.activeCore(), c.activeCore());
    EXPECT_EQ(b.countMultiModifiedLines(), 0u);
    EXPECT_EQ(c.countMultiModifiedLines(), 0u);
}

TEST(MachineCheckpoint, SingleCoreMachineRoundTrips)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    MigrationMachine a(cfg);
    CircularStream s(20'000);
    for (uint64_t i = 0; i < 100'000; ++i)
        a.access(MemRef::load(s.next() * 64));
    const MachineCheckpoint ckpt = a.checkpoint();
    EXPECT_FALSE(ckpt.hasController);
    MigrationMachine b(cfg);
    b.restore(ckpt);
    EXPECT_EQ(b.stats().l2Misses, a.stats().l2Misses);
    EXPECT_EQ(b.activeCore(), 0u);
}

// ---- tamper detection -------------------------------------------------

using CheckpointDeathTest = ::testing::Test;

TEST(CheckpointDeathTest, OversizedWindowTripsTheContract)
{
    const EngineConfig ec = engineConfig();
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    CircularStream s(500);
    for (int i = 0; i < 10'000; ++i)
        engine.reference(s.next());
    EngineCheckpoint ckpt = engine.checkpoint();
    ckpt.window.resize(ec.windowSize + 7); // forged |R|
    EXPECT_DEATH(engine.restore(ckpt), "exceeds capacity");
}

TEST(CheckpointDeathTest, TamperedSumIeTripsTheParanoidAudit)
{
    if (!kAuditParanoid)
        GTEST_SKIP() << "A_R-drift audit only runs at paranoid";
    const EngineConfig ec = engineConfig();
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    CircularStream s(500);
    for (int i = 0; i < 10'000; ++i)
        engine.reference(s.next());
    EngineCheckpoint ckpt = engine.checkpoint();
    ckpt.sumIe += 999; // corrupt the cached window sum
    engine.restore(ckpt); // trusted here...
    EXPECT_DEATH(
        {
            for (int i = 0; i < 1000; ++i)
                engine.reference(s.next());
        },
        ""); // ...caught by the A_R window-sum audit on the next refs
}

} // namespace
} // namespace xmig
