/**
 * @file
 * Tests for the generalized recursive k-way splitter (the section 6
 * "larger number of cores" conjecture).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/kway_splitter.hpp"
#include "core/oe_store.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

KWaySplitter::Config
config(unsigned depth)
{
    KWaySplitter::Config c;
    c.depth = depth;
    c.rootWindow = 128;
    c.filterBits = 20;
    return c;
}

TEST(KWaySplitter, TreeShape)
{
    UnboundedOeStore store(16);
    for (unsigned depth : {1u, 2u, 3u, 4u}) {
        KWaySplitter splitter(config(depth), store);
        EXPECT_EQ(splitter.numSubsets(), 1u << depth);
        EXPECT_EQ(splitter.numMechanisms(), (1u << depth) - 1);
    }
}

TEST(KWaySplitter, SubsetInRange)
{
    UnboundedOeStore store(16);
    KWaySplitter splitter(config(3), store);
    UniformRandomStream s(4000);
    for (int t = 0; t < 100'000; ++t)
        ASSERT_LT(splitter.onReference(s.next()).subset, 8u);
}

TEST(KWaySplitter, DepthOneMatchesTwoWayBehavior)
{
    // depth 1 == one mechanism == the paper's 2-way splitter.
    UnboundedOeStore store(16);
    KWaySplitter splitter(config(1), store);
    CircularStream s(4000);
    for (int t = 0; t < 1'000'000; ++t)
        splitter.onReference(s.next());
    std::map<unsigned, uint64_t> count;
    for (int t = 0; t < 4000; ++t)
        ++count[splitter.onReference(s.next()).subset];
    EXPECT_GT(count[0], 1200u);
    EXPECT_GT(count[1], 1200u);
}

TEST(KWaySplitter, EightWayCircularBalancedSubsets)
{
    UnboundedOeStore store(16);
    KWaySplitter splitter(config(3), store);
    CircularStream s(8000);
    for (int t = 0; t < 6'000'000; ++t)
        splitter.onReference(s.next());
    std::map<unsigned, uint64_t> count;
    unsigned prev = 99;
    uint64_t segments = 0;
    for (int t = 0; t < 8000; ++t) {
        const unsigned sub = splitter.onReference(s.next()).subset;
        ++count[sub];
        if (sub != prev)
            ++segments;
        prev = sub;
    }
    // All 8 subsets populated, none dominating.
    EXPECT_EQ(count.size(), 8u);
    for (const auto &[sub, n] : count)
        EXPECT_GT(n, 300u) << "subset " << sub;
    // Time-coherent: bounded number of runs per cycle.
    EXPECT_LE(segments, 48u);
}

TEST(KWaySplitter, FilterFrozenWithoutUpdateFlag)
{
    UnboundedOeStore store(16);
    KWaySplitter splitter(config(3), store);
    UniformRandomStream s(2000);
    for (int t = 0; t < 50'000; ++t) {
        const SplitDecision d = splitter.onReference(s.next(), false);
        ASSERT_FALSE(d.transition);
        ASSERT_EQ(d.subset, 0u);
    }
    EXPECT_EQ(splitter.transitions(), 0u);
}

TEST(KWaySplitter, SamplingCutoffRespected)
{
    UnboundedOeStore store(16);
    KWaySplitter::Config c = config(3);
    c.samplingCutoff = 8;
    KWaySplitter splitter(c, store);
    for (uint64_t line = 0; line < 310; ++line) {
        const SplitDecision d = splitter.onReference(line);
        ASSERT_EQ(d.sampled, hashMod31(line) < 8);
    }
    EXPECT_EQ(store.stats().lookups, 80u);
}

} // namespace
} // namespace xmig
