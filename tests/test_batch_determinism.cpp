/**
 * @file
 * xmig-bolt batching byte-identity: the batched and pipelined feed
 * modes must be indistinguishable from the per-reference path in
 * every observable — Table-2 rows, machine counters, journal JSONL
 * bytes, sweep text at any --jobs — with and without an armed fault
 * plan; checkpoints must round-trip mid-stream; and the SoA affinity
 * store must decide exactly like the AoS one. These are the
 * acceptance properties of docs/parallelism.md, "batching".
 */

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/oe_store.hpp"
#include "core/soa_oe_store.hpp"
#include "fault/fault_injector.hpp"
#include "obs/journal.hpp"
#include "sim/observe.hpp"
#include "sim/quadcore.hpp"
#include "sim/runner/sweep.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

QuadcoreRow
runWith(const std::string &bench, FeedMode feed,
        uint64_t warmup = 0, const std::string &plan = "")
{
    QuadcoreParams p;
    p.instructionsPerBenchmark = 120'000;
    p.warmupInstructions = warmup;
    p.feed = feed;
    p.machine.faultPlan = plan;
    return runQuadcore(bench, p);
}

void
expectRowsEqual(const QuadcoreRow &a, const QuadcoreRow &b,
                const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.l2MissesBaseline, b.l2MissesBaseline) << what;
    EXPECT_EQ(a.l2Misses4x, b.l2Misses4x) << what;
    EXPECT_EQ(a.migrations, b.migrations) << what;
    EXPECT_EQ(a.l2ToL2Forwards, b.l2ToL2Forwards) << what;
}

} // namespace

TEST(BatchDeterminism, EveryTable1WorkloadAgreesAcrossFeedModes)
{
    for (const std::string &name : allWorkloadNames()) {
        const QuadcoreRow per = runWith(name, FeedMode::PerRef);
        expectRowsEqual(per, runWith(name, FeedMode::Batched),
                        name + " batched");
        expectRowsEqual(per, runWith(name, FeedMode::Pipelined),
                        name + " pipelined");
    }
}

TEST(BatchDeterminism, AdversarialWorkloadsAgreeAcrossFeedModes)
{
    for (const std::string &name : adversarialWorkloadNames()) {
        const QuadcoreRow per = runWith(name, FeedMode::PerRef);
        expectRowsEqual(per, runWith(name, FeedMode::Batched),
                        name + " batched");
        expectRowsEqual(per, runWith(name, FeedMode::Pipelined),
                        name + " pipelined");
    }
}

TEST(BatchDeterminism, WarmupResetLandsMidChunkExactly)
{
    // 37'777 instructions is not a multiple of K = 64 references, so
    // the counter reset lands inside a chunk in both batched modes.
    const QuadcoreRow per =
        runWith("179.art", FeedMode::PerRef, 37'777);
    expectRowsEqual(per, runWith("179.art", FeedMode::Batched, 37'777),
                    "warmup batched");
    expectRowsEqual(per,
                    runWith("179.art", FeedMode::Pipelined, 37'777),
                    "warmup pipelined");
}

TEST(BatchDeterminism, ArmedFaultPlanAgreesAcrossFeedModes)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    // Injector ticks are per-reference, so the fault-armed machine
    // falls back to the scalar path internally — every feed mode must
    // still see the identical fault timeline.
    const std::string plan =
        "seed=5;rate=0.001:bus_drop;at=60000:core_off=1;"
        "at=90000:core_on=1";
    const QuadcoreRow per =
        runWith("179.art", FeedMode::PerRef, 0, plan);
    expectRowsEqual(per,
                    runWith("179.art", FeedMode::Batched, 0, plan),
                    "fault batched");
    expectRowsEqual(per,
                    runWith("179.art", FeedMode::Pipelined, 0, plan),
                    "fault pipelined");
}

TEST(BatchDeterminism, JournalJsonlBytesAgreeAcrossFeedModes)
{
    if (!obs::kJournalCompiled)
        GTEST_SKIP() << "journal compiled out";
    std::string jsonl[3];
    const FeedMode modes[3] = {FeedMode::PerRef, FeedMode::Batched,
                               FeedMode::Pipelined};
    for (int m = 0; m < 3; ++m) {
        ObserveOptions oo;
        oo.journalOut = testing::TempDir() + "xmig_batch_journal_" +
                        std::to_string(m) + ".jsonl";
        RunObservatory observatory(oo);
        QuadcoreParams p;
        p.instructionsPerBenchmark = 120'000;
        p.feed = modes[m];
        runQuadcore("storm.thrash", p, &observatory);
        jsonl[m] = slurp(oo.journalOut);
    }
    ASSERT_FALSE(jsonl[0].empty());
    EXPECT_EQ(jsonl[0], jsonl[1]) << "batched journal diverged";
    EXPECT_EQ(jsonl[0], jsonl[2]) << "pipelined journal diverged";
}

TEST(BatchDeterminism, SweepTextIdenticalAcrossJobsAndFeedModes)
{
    const std::vector<std::string> benches = {"179.art", "181.mcf",
                                              "em3d"};
    auto sweepText = [&](FeedMode feed, unsigned jobs) {
        SweepSpec spec;
        spec.cells = benches.size();
        spec.run = [&](size_t i) {
            QuadcoreParams p;
            p.instructionsPerBenchmark = 60'000;
            p.feed = feed;
            const QuadcoreRow r = runQuadcore(benches[i], p);
            RunResult res;
            res.rows.push_back(
                {"",
                 {r.name, std::to_string(r.l2Misses4x),
                  std::to_string(r.migrations)}});
            return res;
        };
        const std::vector<RunResult> results = runSweep(spec, jobs);
        AsciiTable table({"benchmark", "l2miss", "migrations"});
        collateRows(results, table);
        return table.render();
    };
    const std::string reference = sweepText(FeedMode::PerRef, 1);
    for (const FeedMode feed :
         {FeedMode::Batched, FeedMode::Pipelined}) {
        for (const unsigned jobs : {1u, 3u, 8u}) {
            EXPECT_EQ(reference, sweepText(feed, jobs))
                << "feed=" << static_cast<int>(feed)
                << " jobs=" << jobs;
        }
    }
}

TEST(BatchDeterminism, EngineBatchMatchesScalarAndChunkSplits)
{
    EngineConfig ec;
    ec.windowSize = 128;
    AffinityCacheConfig ac;
    SoaAffinityStore sa(ac), sb(ac);
    AffinityEngine a(ec, sa), b(ec, sb);
    CircularStream stream(4000);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 1000; ++i)
        lines.push_back(stream.next());

    std::vector<RefOutcome> want;
    for (const uint64_t line : lines)
        want.push_back(a.reference(line));

    // Odd chunk lengths: splits never align with K = 64.
    std::vector<RefOutcome> got(lines.size());
    size_t at = 0;
    for (const size_t k : {64u, 36u, 7u, 129u, 1u, 763u}) {
        b.referenceBatch(lines.data() + at, k, got.data() + at);
        at += k;
    }
    ASSERT_EQ(at, lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
        ASSERT_EQ(want[i].ae, got[i].ae) << "ref " << i;
        ASSERT_EQ(want[i].inWindow, got[i].inWindow) << "ref " << i;
    }
    EXPECT_EQ(a.checkpoint().windowAffinity,
              b.checkpoint().windowAffinity);
    EXPECT_EQ(a.checkpoint().delta, b.checkpoint().delta);
    EXPECT_EQ(a.checkpoint().sumIe, b.checkpoint().sumIe);
}

TEST(BatchDeterminism, EngineBatchFallbackArmMatchesScalar)
{
    // DistinctLru windows take referenceBatch()'s exact scalar
    // fallback arm — it must agree with reference() too.
    EngineConfig ec;
    ec.windowSize = 64;
    ec.window = WindowKind::DistinctLru;
    AffinityCacheConfig ac;
    SoaAffinityStore sa(ac), sb(ac);
    AffinityEngine a(ec, sa), b(ec, sb);
    CircularStream stream(500);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 400; ++i)
        lines.push_back(stream.next());
    std::vector<RefOutcome> got(lines.size());
    b.referenceBatch(lines.data(), lines.size(), got.data());
    for (size_t i = 0; i < lines.size(); ++i) {
        const RefOutcome want = a.reference(lines[i]);
        ASSERT_EQ(want.ae, got[i].ae) << "ref " << i;
        ASSERT_EQ(want.inWindow, got[i].inWindow) << "ref " << i;
    }
}

TEST(BatchDeterminism, EngineCheckpointRoundTripsMidBatch)
{
    EngineConfig ec;
    ec.windowSize = 128;
    AffinityCacheConfig ac;
    SoaAffinityStore sb(ac), sc(ac);
    AffinityEngine b(ec, sb);
    CircularStream stream(4000);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 100; ++i)
        lines.push_back(stream.next());

    // 64 + 36: checkpoint lands on a chunk boundary of the first call
    // but mid-stream of the logical 100-reference batch.
    std::vector<RefOutcome> out(lines.size());
    b.referenceBatch(lines.data(), 64, out.data());
    const EngineCheckpoint ckpt = b.checkpoint();
    std::vector<OeEntrySnapshot> entries;
    sb.snapshotEntries(entries);
    const OeStoreStats storeStats = sb.stats();
    b.referenceBatch(lines.data() + 64, 36, out.data() + 64);

    AffinityEngine c(ec, sc);
    sc.restoreEntries(entries, storeStats);
    c.restore(ckpt);
    for (size_t i = 64; i < lines.size(); ++i)
        EXPECT_EQ(c.reference(lines[i]).ae, out[i].ae) << "ref " << i;
}

TEST(BatchDeterminism, MachineCheckpointBetweenOddLengthBatches)
{
    MachineConfig cfg;
    MigrationMachine a(cfg), b(cfg);
    CircularStream s(20'000);
    std::vector<MemRef> refs;
    for (uint64_t i = 0; i < 150'000; ++i) {
        refs.push_back(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        const uint64_t addr = s.next() * 64;
        refs.push_back(i % 4 == 0 ? MemRef::store(addr)
                                  : MemRef::load(addr));
    }

    // a: scalar; b: odd-length batches. Checkpoint both mid-stream.
    const size_t half = refs.size() / 2 + 33; // not a chunk multiple
    for (size_t i = 0; i < half; ++i)
        a.access(refs[i]);
    for (size_t at = 0; at < half;) {
        const size_t k = std::min<size_t>(97, half - at);
        b.accessBatch(refs.data() + at, k);
        at += k;
    }
    const MachineCheckpoint ca = a.checkpoint();
    const MachineCheckpoint cb = b.checkpoint();
    EXPECT_EQ(ca.stats.refs, cb.stats.refs);
    EXPECT_EQ(ca.stats.instructions, cb.stats.instructions);
    EXPECT_EQ(ca.stats.l1Misses, cb.stats.l1Misses);
    EXPECT_EQ(ca.stats.l2Misses, cb.stats.l2Misses);
    EXPECT_EQ(ca.stats.migrations, cb.stats.migrations);

    // Restore the batched machine's checkpoint into two fresh
    // machines and drive one scalar, one batched: they must stay in
    // lockstep to the end of the stream.
    MigrationMachine c(cfg), d(cfg);
    c.restore(cb);
    d.restore(cb);
    for (size_t i = half; i < refs.size(); ++i)
        c.access(refs[i]);
    for (size_t at = half; at < refs.size();) {
        const size_t k = std::min<size_t>(101, refs.size() - at);
        d.accessBatch(refs.data() + at, k);
        at += k;
    }
    EXPECT_EQ(c.stats().refs, d.stats().refs);
    EXPECT_EQ(c.stats().instructions, d.stats().instructions);
    EXPECT_EQ(c.stats().l1Misses, d.stats().l1Misses);
    EXPECT_EQ(c.stats().l2Misses, d.stats().l2Misses);
    EXPECT_EQ(c.stats().migrations, d.stats().migrations);
    EXPECT_EQ(c.activeCore(), d.activeCore());
}

TEST(BatchDeterminism, SoaStoreDecidesExactlyLikeAos)
{
    for (const std::string &name :
         {std::string("179.art"), std::string("storm.thrash")}) {
        QuadcoreParams p;
        p.instructionsPerBenchmark = 120'000;
        p.machine.controller.boundedStore = true;
        p.machine.controller.affinityCache.soa = false;
        const QuadcoreRow aos = runQuadcore(name, p);
        p.machine.controller.affinityCache.soa = true;
        const QuadcoreRow soa = runQuadcore(name, p);
        expectRowsEqual(aos, soa, name + " soa-vs-aos");
    }
}

} // namespace xmig
