/**
 * @file
 * xmig-storm adversarial kernels: registration outside the Table-1
 * universe, per-seed determinism for every registered workload, and
 * golden evidence that the storm kernels actually degrade the
 * affinity algorithm relative to their SPEC-style counterparts.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "multicore/machine.hpp"
#include "workloads/registry.hpp"

namespace xmig {
namespace {

/** Drive a default machine with a workload and return its stats. */
MachineStats
runOn(const std::string &name, uint64_t instructions, uint64_t seed)
{
    MachineConfig config;
    MigrationMachine machine(config);
    makeWorkload(name)->run(machine, instructions, seed);
    return machine.stats();
}

/** Migrations per 1000 refs — the paper's migration-rate axis. */
double
migPerKiloRef(const MachineStats &s)
{
    return s.refs ? 1000.0 * static_cast<double>(s.migrations) /
                        static_cast<double>(s.refs)
                  : 0.0;
}

TEST(StormRegistry, RegistersOutsideTableOne)
{
    const auto &storm = adversarialWorkloadNames();
    ASSERT_EQ(storm.size(), 3u);
    EXPECT_EQ(storm[0], "storm.unsplit");
    EXPECT_EQ(storm[1], "storm.phase");
    EXPECT_EQ(storm[2], "storm.thrash");

    // The paper-facing universe stays at 18 benchmarks.
    EXPECT_EQ(allWorkloadNames().size(), 18u);
    for (const std::string &name : storm) {
        for (const std::string &table1 : allWorkloadNames())
            EXPECT_NE(name, table1);
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->info().name, name);
        EXPECT_EQ(w->info().suite, "xmig-storm");
        EXPECT_FALSE(w->info().description.empty());
    }
}

TEST(StormWorkloads, EveryRegisteredWorkloadIsSeedDeterministic)
{
    std::vector<std::string> names = allWorkloadNames();
    const auto &storm = adversarialWorkloadNames();
    names.insert(names.end(), storm.begin(), storm.end());
    for (const std::string &name : names) {
        RefRecorder r1, r2;
        makeWorkload(name)->run(r1, 20'000, 7);
        makeWorkload(name)->run(r2, 20'000, 7);
        ASSERT_FALSE(r1.refs().empty()) << name;
        EXPECT_EQ(r1.refs(), r2.refs()) << name;
    }

    // The storm kernels are RNG-driven throughout, so a different
    // seed must actually change the stream. (Some Table-1 kernels
    // have seed-independent warm-up phases — bh's tree build — so
    // this stronger property is asserted for the storm family only.)
    for (const std::string &name : storm) {
        RefRecorder r1, r3;
        makeWorkload(name)->run(r1, 20'000, 7);
        makeWorkload(name)->run(r3, 20'000, 8);
        EXPECT_NE(r1.refs(), r3.refs()) << name;
    }
}

/**
 * Golden degradation, storm.unsplit vs 175.vpr (the Table-1 kernel
 * the paper singles out for poor splittability): the unsplittable
 * straddling set must cost measurably more migrations *and* more L2
 * misses than vpr under identical machine and budget. Margins sit
 * well inside the measured gap (2.5 vs 1.4 mig/kiloref, 46k vs 19k
 * misses at this budget) so the test tracks the mechanism, not the
 * third decimal.
 */
TEST(StormWorkloads, UnsplitDegradesAffinityVsVpr)
{
    const uint64_t kInstr = 300'000;
    const MachineStats storm = runOn("storm.unsplit", kInstr, 42);
    const MachineStats spec = runOn("175.vpr", kInstr, 42);

    EXPECT_GT(storm.migrations, 0u);
    EXPECT_GE(migPerKiloRef(storm), 1.3 * migPerKiloRef(spec))
        << "storm " << migPerKiloRef(storm) << " vs vpr "
        << migPerKiloRef(spec);
    EXPECT_GE(storm.l2Misses, spec.l2Misses * 3 / 2)
        << "storm " << storm.l2Misses << " vs vpr " << spec.l2Misses;
}

/**
 * Golden degradation, storm.phase vs 171.swim: swim's stable
 * streaming phases are the transition filter's best case (measured
 * migration rate ~0), while the hysteresis-resonant phase storm
 * sustains better than one migration per 2000 refs.
 */
TEST(StormWorkloads, PhaseStormSustainsMigrationStorm)
{
    const uint64_t kInstr = 300'000;
    const MachineStats storm = runOn("storm.phase", kInstr, 42);
    const MachineStats calm = runOn("171.swim", kInstr, 42);

    EXPECT_GT(migPerKiloRef(storm), 0.5)
        << "storm.phase " << migPerKiloRef(storm);
    EXPECT_LT(migPerKiloRef(calm), 0.05)
        << "171.swim " << migPerKiloRef(calm);
}

TEST(StormWorkloads, ThrashKeepsFilterBusyButMigratesLess)
{
    // storm.thrash dithers at the threshold: it migrates (unlike
    // swim) but far below the committed storm of storm.phase.
    const uint64_t kInstr = 300'000;
    const MachineStats thrash = runOn("storm.thrash", kInstr, 42);
    const MachineStats storm = runOn("storm.phase", kInstr, 42);
    EXPECT_GT(thrash.migrations, 0u);
    EXPECT_LT(migPerKiloRef(thrash), migPerKiloRef(storm));
}

} // namespace
} // namespace xmig
