/**
 * @file
 * Tests for pointer-load marking and pointer-load filtering
 * (section 6 extension).
 */

#include <gtest/gtest.h>

#include "cache/l1_filter.hpp"
#include "core/migration_controller.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

TEST(PointerLoads, FactorySetsFlag)
{
    const MemRef r = MemRef::pointerLoad(0x40);
    EXPECT_TRUE(r.pointer);
    EXPECT_EQ(r.type, RefType::Load);
    EXPECT_FALSE(MemRef::load(0x40).pointer);
    EXPECT_FALSE(MemRef::load(0x40) == r);
}

TEST(PointerLoads, FlagSurvivesL1Filtering)
{
    struct CaptureSink : LineSink
    {
        std::vector<LineEvent> events;
        void onLine(const LineEvent &e) override { events.push_back(e); }
    } sink;
    L1FilterConfig c;
    c.il1Bytes = 4 * 64;
    c.dl1Bytes = 4 * 64;
    L1Filter filter(c, sink);
    filter.access(MemRef::pointerLoad(0x1000));
    filter.access(MemRef::load(0x2000));
    ASSERT_EQ(sink.events.size(), 2u);
    EXPECT_TRUE(sink.events[0].pointer);
    EXPECT_FALSE(sink.events[1].pointer);
}

TEST(PointerLoads, LinkedStructureKernelsEmitThem)
{
    for (const char *name : {"181.mcf", "health", "bisort", "bh"}) {
        auto w = makeWorkload(name);
        struct PtrCounter : RefSink
        {
            uint64_t ptr = 0, other = 0;
            void
            access(const MemRef &r) override
            {
                (r.pointer ? ptr : other) += 1;
            }
        } counter;
        w->run(counter, 200'000);
        EXPECT_GT(counter.ptr, 0u) << name;
    }
    // Pure array scanners emit none.
    for (const char *name : {"179.art", "171.swim"}) {
        auto w = makeWorkload(name);
        struct PtrCounter : RefSink
        {
            uint64_t ptr = 0;
            void
            access(const MemRef &r) override
            {
                ptr += r.pointer ? 1 : 0;
            }
        } counter;
        w->run(counter, 200'000);
        EXPECT_EQ(counter.ptr, 0u) << name;
    }
}

TEST(PointerLoadFilter, BlocksNonPointerRequests)
{
    MigrationControllerConfig c;
    c.numCores = 4;
    c.windowX = 64;
    c.windowY = 32;
    c.filterBits = 16;
    c.pointerLoadFilter = true;
    MigrationController ctrl(c);
    UniformRandomStream s(2000);
    for (int t = 0; t < 100'000; ++t)
        ctrl.onRequest(s.next(), true, /*pointer_load=*/false);
    EXPECT_EQ(ctrl.stats().migrations, 0u);
    EXPECT_EQ(ctrl.stats().filterUpdates, 0u);
    // Pointer-load requests pass through.
    for (int t = 0; t < 100'000; ++t)
        ctrl.onRequest(s.next(), true, /*pointer_load=*/true);
    EXPECT_GT(ctrl.stats().migrations, 0u);
}

TEST(PointerLoadFilter, ComposesWithL2Filtering)
{
    MigrationControllerConfig c;
    c.numCores = 2;
    c.windowX = 64;
    c.filterBits = 16;
    c.pointerLoadFilter = true;
    c.l2Filtering = true;
    MigrationController ctrl(c);
    UniformRandomStream s(2000);
    // Pointer loads that hit L2 must still be filtered out.
    for (int t = 0; t < 50'000; ++t)
        ctrl.onRequest(s.next(), /*l2_miss=*/false, true);
    EXPECT_EQ(ctrl.stats().filterUpdates, 0u);
    // Both conditions met: updates flow.
    for (int t = 0; t < 50'000; ++t)
        ctrl.onRequest(s.next(), true, true);
    EXPECT_GT(ctrl.stats().filterUpdates, 0u);
}

} // namespace
} // namespace xmig
