/**
 * @file
 * Unit tests for the set-associative and skewed tag stores.
 */

#include <gtest/gtest.h>

#include "cache/tags.hpp"

namespace xmig {
namespace {

TEST(SetAssocTags, FindAfterAllocate)
{
    SetAssocTags tags(16, 4, ReplPolicy::Lru);
    CacheEntry evicted;
    bool evicted_valid;
    tags.allocate(0x1234, &evicted, &evicted_valid);
    EXPECT_FALSE(evicted_valid);
    CacheEntry *e = tags.find(0x1234);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->line, 0x1234u);
    EXPECT_TRUE(e->valid);
    EXPECT_FALSE(e->modified);
    EXPECT_EQ(tags.find(0x9999), nullptr);
}

TEST(SetAssocTags, LruEvictsLeastRecentlyUsed)
{
    SetAssocTags tags(1, 2, ReplPolicy::Lru); // one 2-way set
    CacheEntry evicted;
    bool ev;
    tags.allocate(1, &evicted, &ev);
    tags.allocate(2, &evicted, &ev);
    // Touch 1 so 2 becomes LRU.
    tags.touch(*tags.find(1));
    tags.allocate(3, &evicted, &ev);
    EXPECT_TRUE(ev);
    EXPECT_EQ(evicted.line, 2u);
    EXPECT_NE(tags.find(1), nullptr);
    EXPECT_EQ(tags.find(2), nullptr);
    EXPECT_NE(tags.find(3), nullptr);
}

TEST(SetAssocTags, FifoIgnoresTouches)
{
    SetAssocTags tags(1, 2, ReplPolicy::Fifo);
    CacheEntry evicted;
    bool ev;
    tags.allocate(1, &evicted, &ev);
    tags.allocate(2, &evicted, &ev);
    tags.touch(*tags.find(1)); // must not save line 1 under FIFO
    tags.allocate(3, &evicted, &ev);
    EXPECT_TRUE(ev);
    EXPECT_EQ(evicted.line, 1u);
}

TEST(SetAssocTags, PrefersInvalidFrames)
{
    SetAssocTags tags(1, 4, ReplPolicy::Lru);
    CacheEntry evicted;
    bool ev;
    for (uint64_t l = 1; l <= 4; ++l) {
        tags.allocate(l, &evicted, &ev);
        EXPECT_FALSE(ev) << "no eviction while invalid frames remain";
    }
    tags.allocate(5, &evicted, &ev);
    EXPECT_TRUE(ev);
}

TEST(SetAssocTags, SetIndexingSeparatesSets)
{
    SetAssocTags tags(4, 1, ReplPolicy::Lru); // direct-mapped, 4 sets
    CacheEntry evicted;
    bool ev;
    // Lines 0..3 land in distinct sets: no evictions.
    for (uint64_t l = 0; l < 4; ++l) {
        tags.allocate(l, &evicted, &ev);
        EXPECT_FALSE(ev);
    }
    // Line 4 conflicts with line 0 (same set).
    tags.allocate(4, &evicted, &ev);
    EXPECT_TRUE(ev);
    EXPECT_EQ(evicted.line, 0u);
}

TEST(SetAssocTags, InvalidateRemoves)
{
    SetAssocTags tags(16, 2, ReplPolicy::Lru);
    CacheEntry evicted;
    bool ev;
    tags.allocate(7, &evicted, &ev);
    EXPECT_TRUE(tags.invalidate(7));
    EXPECT_EQ(tags.find(7), nullptr);
    EXPECT_FALSE(tags.invalidate(7));
}

TEST(SetAssocTags, OccupancyAndForEach)
{
    SetAssocTags tags(8, 2, ReplPolicy::Lru);
    CacheEntry evicted;
    bool ev;
    for (uint64_t l = 0; l < 10; ++l)
        tags.allocate(l, &evicted, &ev);
    EXPECT_EQ(tags.occupancy(), 10u);
    uint64_t seen = 0;
    tags.forEachValid([&](const CacheEntry &) { ++seen; });
    EXPECT_EQ(seen, 10u);
    EXPECT_EQ(tags.frames(), 16u);
}

TEST(SetAssocTags, RandomPolicyEvictsSomething)
{
    SetAssocTags tags(1, 4, ReplPolicy::Random, 3);
    CacheEntry evicted;
    bool ev;
    for (uint64_t l = 1; l <= 4; ++l)
        tags.allocate(l, &evicted, &ev);
    tags.allocate(5, &evicted, &ev);
    EXPECT_TRUE(ev);
    EXPECT_GE(evicted.line, 1u);
    EXPECT_LE(evicted.line, 4u);
    EXPECT_EQ(tags.occupancy(), 4u);
}

TEST(SkewedTags, FindAfterAllocate)
{
    SkewedTags tags(64, 4, ReplPolicy::Lru);
    CacheEntry evicted;
    bool ev;
    tags.allocate(0xabcdef, &evicted, &ev);
    CacheEntry *e = tags.find(0xabcdef);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->line, 0xabcdefu);
    EXPECT_TRUE(tags.invalidate(0xabcdef));
    EXPECT_EQ(tags.find(0xabcdef), nullptr);
}

TEST(SkewedTags, SequentialFillUsesMostOfCapacity)
{
    // The skew property: consecutive lines should occupy nearly the
    // whole cache, not fight over a few sets.
    SkewedTags tags(256, 4, ReplPolicy::Lru); // 1024 frames
    CacheEntry evicted;
    bool ev;
    for (uint64_t l = 0; l < 1024; ++l)
        tags.allocate(0x4000000 + l, &evicted, &ev);
    EXPECT_GT(tags.occupancy(), 800u);
}

TEST(SkewedTags, AgePolicyEvicts)
{
    SkewedTags tags(16, 4, ReplPolicy::Age);
    CacheEntry evicted;
    bool ev;
    for (uint64_t l = 0; l < 500; ++l)
        tags.allocate(l, &evicted, &ev);
    EXPECT_LE(tags.occupancy(), 64u);
    // Recently touched entries survive longer than untouched ones on
    // average; at minimum the structure stays consistent.
    uint64_t n = 0;
    tags.forEachValid([&](const CacheEntry &e) {
        EXPECT_TRUE(e.valid);
        ++n;
    });
    EXPECT_EQ(n, tags.occupancy());
}

} // namespace
} // namespace xmig
