/**
 * @file
 * Shadow-model differential checker (shadow_audit.hpp).
 *
 * The clean soaks drive the shadow-armed postponed-update engine over
 * more than a million references of synthetic and Olden-style traffic
 * with affinity widths wide enough that no SatInt ever clamps: the
 * oracle must stay armed (bit-exact with DirectAffinityEngine) the
 * whole way. The corruption tests then verify the other edge: a
 * silently corrupted O_e entry must panic, while each *legitimate*
 * model departure (saturation, FIFO duplicates, affinity-cache
 * eviction, foreign store entries, ArKind::Figure2) must disarm the
 * oracle without killing the run.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/migration_controller.hpp"
#include "core/oe_store.hpp"
#include "core/shadow_audit.hpp"
#include "core/splitter.hpp"
#include "mem/trace.hpp"
#include "multicore/machine.hpp"
#include "workloads/registry.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

/**
 * Engine configuration wide enough that the bounded soaks below can
 * never clamp a SatInt: affinities stay within +-(references), so 44
 * bits (A_R at 44 + 7 = 51 bits) leaves orders of magnitude of slack.
 */
EngineConfig
wideConfig(size_t window, WindowKind kind)
{
    EngineConfig c;
    c.affinityBits = 44;
    c.windowSize = window;
    c.window = kind;
    c.shadow = ShadowMode::Armed;
    return c;
}

/** Drive `refs` elements of `stream` through a fresh armed engine. */
void
soak(ElementStream &stream, uint64_t refs, WindowKind kind,
     size_t window = 128)
{
    const EngineConfig config = wideConfig(window, kind);
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    for (uint64_t i = 0; i < refs; ++i)
        engine.reference(stream.next());

    ASSERT_NE(engine.shadow(), nullptr);
    EXPECT_TRUE(engine.shadow()->armed())
        << "oracle disarmed during a soak that should never clamp";
    EXPECT_EQ(engine.shadow()->comparisons(), refs);
    EXPECT_GT(engine.shadow()->deepChecks(), 0u);
}

TEST(ShadowAuditSoak, CircularFifoStaysBitExact)
{
    // Circular over a universe larger than the window never re-enters
    // a line still in the FIFO, so even the FIFO engine is shadowable.
    CircularStream stream(300);
    soak(stream, 400'000, WindowKind::Fifo);
}

TEST(ShadowAuditSoak, CircularDistinctLruStaysBitExact)
{
    CircularStream stream(300);
    soak(stream, 150'000, WindowKind::DistinctLru);
}

TEST(ShadowAuditSoak, HalfRandomStaysBitExact)
{
    // Splittable phase-alternating traffic; duplicates are common, so
    // only the distinct-LRU window keeps the identities exact.
    HalfRandomStream stream(400, 64);
    soak(stream, 300'000, WindowKind::DistinctLru);
}

TEST(ShadowAuditSoak, UniformRandomStaysBitExact)
{
    UniformRandomStream stream(512);
    soak(stream, 300'000, WindowKind::DistinctLru);
}

TEST(ShadowAuditSoak, StrideStaysBitExact)
{
    StrideStream stream(509, 3); // prime universe, full-period stride
    soak(stream, 150'000, WindowKind::DistinctLru);
}

/**
 * Folds a workload's data-reference stream into a bounded line
 * universe and feeds it to an armed engine, keeping the shadow
 * model's O(|S|) per-reference cost constant.
 */
class FoldingSink : public RefSink
{
  public:
    FoldingSink(AffinityEngine &engine, uint64_t universe)
        : engine_(engine), universe_(universe)
    {
    }

    void
    access(const MemRef &ref) override
    {
        if (!ref.isData())
            return;
        engine_.reference((ref.addr / 64) % universe_);
        ++fed_;
    }

    uint64_t fed() const { return fed_; }

  private:
    AffinityEngine &engine_;
    uint64_t universe_;
    uint64_t fed_ = 0;
};

TEST(ShadowAuditSoak, OldenWorkloadsStayBitExact)
{
    // Olden-style pointer-chasing traffic: linked-structure walks
    // with real duplicate density, not synthetic periodicity.
    for (const char *name : {"mst", "em3d"}) {
        SCOPED_TRACE(name);
        const EngineConfig config =
            wideConfig(128, WindowKind::DistinctLru);
        UnboundedOeStore store(config.affinityBits);
        AffinityEngine engine(config, store);
        FoldingSink sink(engine, 1024);
        makeWorkload(name)->run(sink, 300'000);

        ASSERT_NE(engine.shadow(), nullptr);
        EXPECT_TRUE(engine.shadow()->armed()) << name;
        EXPECT_GT(sink.fed(), 50'000u);
        EXPECT_EQ(engine.shadow()->comparisons(), sink.fed());
    }
}

TEST(ShadowAudit, DeepSweepCadenceIsHonored)
{
    EngineConfig config = wideConfig(32, WindowKind::DistinctLru);
    config.shadowDeepCheckEvery = 64;
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    CircularStream stream(100);
    for (uint64_t i = 0; i < 1000; ++i)
        engine.reference(stream.next());
    EXPECT_EQ(engine.shadow()->deepChecks(), 1000u / 64);
}

TEST(ShadowAudit, ZeroCadenceDisablesDeepSweeps)
{
    EngineConfig config = wideConfig(32, WindowKind::DistinctLru);
    config.shadowDeepCheckEvery = 0;
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    CircularStream stream(100);
    for (uint64_t i = 0; i < 1000; ++i)
        engine.reference(stream.next());
    EXPECT_EQ(engine.shadow()->deepChecks(), 0u);
    EXPECT_EQ(engine.shadow()->comparisons(), 1000u);
}

/** Corrupt a stored O_e behind the engine's back, then re-reference. */
void
runWithCorruptedStore()
{
    const EngineConfig config = wideConfig(128, WindowKind::Fifo);
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    CircularStream stream(300);
    // One full lap: line 0 has left the window and sits in the store.
    for (uint64_t i = 0; i < 300; ++i)
        engine.reference(stream.next());
    ASSERT_TRUE(store.peek(0).has_value());
    store.store(0, *store.peek(0) + 123); // the silent corruption
    // The very next reference is line 0 again: A_e must diverge.
    for (uint64_t i = 0; i < 300; ++i)
        engine.reference(stream.next());
}

TEST(ShadowAuditDeathTest, CorruptedOeEntryPanics)
{
    EXPECT_DEATH(runWithCorruptedStore(), "shadow audit");
}

TEST(ShadowAuditDisarm, SaturationDisarmsWithoutPanicking)
{
    // 4-bit affinities clamp almost immediately under random traffic;
    // the oracle must bow out, not false-alarm.
    EngineConfig config = wideConfig(16, WindowKind::DistinctLru);
    config.affinityBits = 4;
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    UniformRandomStream stream(64);
    for (uint64_t i = 0; i < 50'000; ++i)
        engine.reference(stream.next());
    EXPECT_FALSE(engine.shadow()->armed());
}

TEST(ShadowAuditDisarm, FifoDuplicateDisarms)
{
    const EngineConfig config = wideConfig(8, WindowKind::Fifo);
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    engine.reference(5);
    EXPECT_TRUE(engine.shadow()->armed());
    engine.reference(5); // still in the FIFO: stale O_e refetch
    EXPECT_FALSE(engine.shadow()->armed());
}

TEST(ShadowAuditDisarm, Figure2DisarmsAtBirth)
{
    EngineConfig config = wideConfig(32, WindowKind::Fifo);
    config.ar = ArKind::Figure2;
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    ASSERT_NE(engine.shadow(), nullptr);
    EXPECT_FALSE(engine.shadow()->armed());
    engine.reference(1);
    EXPECT_EQ(engine.shadow()->comparisons(), 0u);
}

TEST(ShadowAuditDisarm, AffinityCacheEvictionDisarms)
{
    AffinityCacheConfig ac;
    ac.entries = 64;
    ac.ways = 4;
    const EngineConfig config = wideConfig(8, WindowKind::DistinctLru);
    EngineConfig narrow = config;
    narrow.affinityBits = ac.affinityBits; // match the cache width
    AffinityCacheStore store(ac);
    AffinityEngine engine(narrow, store);
    // A working set far beyond 64 entries forces evictions; the first
    // miss on a line the shadow knows must disarm, never panic.
    CircularStream stream(512);
    for (uint64_t i = 0; i < 2048; ++i)
        engine.reference(stream.next());
    EXPECT_GT(store.stats().evictions, 0u);
    EXPECT_FALSE(engine.shadow()->armed());
}

TEST(ShadowAuditDisarm, ForeignStoreEntryDisarms)
{
    const EngineConfig config = wideConfig(16, WindowKind::DistinctLru);
    UnboundedOeStore store(config.affinityBits);
    AffinityEngine engine(config, store);
    for (uint64_t i = 0; i < 32; ++i)
        engine.reference(i);
    // A sibling mechanism sharing the store writes a line this engine
    // has never seen; the engine's next lookup hits on it.
    store.store(999, 5);
    engine.reference(999);
    EXPECT_FALSE(engine.shadow()->armed());
}

TEST(ShadowAuditSplitter, TwoWayMechanismStaysBitExact)
{
    TwoWaySplitter::Config sc;
    sc.engine = wideConfig(128, WindowKind::DistinctLru);
    UnboundedOeStore store(sc.engine.affinityBits);
    TwoWaySplitter splitter(sc, store);
    HalfRandomStream stream(400, 64);
    for (uint64_t i = 0; i < 100'000; ++i)
        splitter.onReference(stream.next());
    ASSERT_NE(splitter.engine().shadow(), nullptr);
    EXPECT_TRUE(splitter.engine().shadow()->armed());
    EXPECT_EQ(splitter.engine().shadow()->comparisons(), 100'000u);
}

TEST(ShadowAuditSplitter, FourWayArmsOnlyMechanismX)
{
    FourWaySplitter::Config sc;
    sc.affinityBits = 44;
    sc.window = WindowKind::DistinctLru;
    sc.shadow = ShadowMode::Armed;
    UnboundedOeStore store(sc.affinityBits);
    FourWaySplitter splitter(sc, store);
    CircularStream stream(600);
    for (uint64_t i = 0; i < 60'000; ++i)
        splitter.onReference(stream.next());
    // Lines are hash-partitioned: mechanism X sees roughly half the
    // stream (odd residues) and stays exact; the Y mechanisms share
    // the store across siblings and are not armed.
    ASSERT_NE(splitter.engineX().shadow(), nullptr);
    EXPECT_TRUE(splitter.engineX().shadow()->armed());
    EXPECT_GT(splitter.engineX().shadow()->comparisons(), 20'000u);
    EXPECT_LT(splitter.engineX().shadow()->comparisons(), 60'000u);
}

MigrationControllerConfig
wideController(unsigned cores)
{
    MigrationControllerConfig c;
    c.numCores = cores;
    c.affinityBits = 44;
    c.window = WindowKind::DistinctLru;
    c.boundedStore = false;
    c.shadowAudit = true;
    return c;
}

TEST(ShadowAuditController, TwoCoreControllerStaysBitExact)
{
    MigrationController ctrl(wideController(2));
    HalfRandomStream stream(400, 64);
    for (uint64_t i = 0; i < 50'000; ++i)
        ctrl.onRequest(stream.next());
    ASSERT_NE(ctrl.shadowAudit(), nullptr);
    EXPECT_TRUE(ctrl.shadowAudit()->armed());
    EXPECT_EQ(ctrl.shadowAudit()->comparisons(), 50'000u);
}

TEST(ShadowAuditController, EightCoreRootStaysBitExact)
{
    MigrationController ctrl(wideController(8));
    CircularStream stream(700);
    for (uint64_t i = 0; i < 50'000; ++i)
        ctrl.onRequest(stream.next());
    ASSERT_NE(ctrl.shadowAudit(), nullptr);
    EXPECT_TRUE(ctrl.shadowAudit()->armed());
    // The tree root only sees the hash-partitioned half of the
    // stream that drives the level-0 mechanism.
    EXPECT_GT(ctrl.shadowAudit()->comparisons(), 15'000u);
    EXPECT_LT(ctrl.shadowAudit()->comparisons(), 50'000u);
}

TEST(ShadowAuditController, ShadowOffByDefault)
{
    MigrationControllerConfig c;
    c.numCores = 4;
    MigrationController ctrl(c);
    EXPECT_EQ(ctrl.shadowAudit(), nullptr);
}

TEST(ShadowAuditMachine, CleanRunOverOldenTraffic)
{
    // End-to-end: a 2-core machine with the oracle armed behind the
    // L1 filter digests real workload traffic without a panic. The
    // post-L1 stream may legitimately disarm the oracle (it is not a
    // controlled synthetic stream), but it must never false-alarm.
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.controller = wideController(2);
    MigrationMachine machine(cfg);
    makeWorkload("mst")->run(machine, 60'000);
    ASSERT_NE(machine.controller(), nullptr);
    ASSERT_NE(machine.controller()->shadowAudit(), nullptr);
    EXPECT_GT(machine.controller()->shadowAudit()->comparisons(), 0u);
    EXPECT_GT(machine.stats().l1Misses, 0u);
}

} // namespace
} // namespace xmig
