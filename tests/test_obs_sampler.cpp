/**
 * @file
 * xmig-scope time-series sampler (obs/sampler.hpp): cadence, delta
 * columns, ring-buffer wraparound and CSV export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/sampler.hpp"

namespace xmig::obs {
namespace {

SamplerConfig
cfg(uint64_t every, size_t capacity)
{
    SamplerConfig c;
    c.sampleEvery = every;
    c.capacity = capacity;
    return c;
}

TEST(Sampler, SamplesOnCadence)
{
    TimeSeriesSampler s(cfg(10, 100));
    int probes = 0;
    s.addColumn("p", [&] { return static_cast<double>(++probes); });

    for (int t = 0; t < 9; ++t)
        EXPECT_FALSE(s.tick());
    EXPECT_TRUE(s.tick()); // tick 10
    EXPECT_EQ(s.samples(), 1u);
    EXPECT_EQ(probes, 1);
    EXPECT_EQ(s.rowTick(0), 10u);

    // A coarse tick(25) crosses two sample points at once.
    EXPECT_TRUE(s.tick(25));
    EXPECT_EQ(s.samples(), 3u);
    EXPECT_EQ(s.rowTick(1), 35u);
    EXPECT_EQ(s.rowTick(2), 35u);
}

TEST(Sampler, DeltaColumnsReportPerIntervalRates)
{
    TimeSeriesSampler s(cfg(10, 100));
    uint64_t events = 0;
    s.addDeltaColumn("rate", &events);

    events = 4;
    s.tick(10);
    events = 9;
    s.tick(10);
    s.tick(10); // no growth this interval

    ASSERT_EQ(s.samples(), 3u);
    EXPECT_EQ(s.rowValues(0)[0], 4.0);
    EXPECT_EQ(s.rowValues(1)[0], 5.0);
    EXPECT_EQ(s.rowValues(2)[0], 0.0);
}

TEST(Sampler, DeltaBaselineIsRegistrationTimeValue)
{
    uint64_t events = 100; // pre-existing history must not leak in
    TimeSeriesSampler s(cfg(5, 8));
    s.addDeltaColumn("rate", &events);
    events = 103;
    s.tick(5);
    EXPECT_EQ(s.rowValues(0)[0], 3.0);
}

TEST(Sampler, IntervalColumnDrainsTicks)
{
    TimeSeriesSampler s(cfg(10, 100));
    s.addColumn("c", [] { return 0.0; });
    s.tick(10);
    s.tick(3);
    s.sampleNow(); // off-cadence: interval is just 3
    s.tick(7);     // completes the pending cadence window
    ASSERT_EQ(s.samples(), 3u);
    // t and interval are the first two CSV columns.
    std::istringstream lines(s.renderCsv());
    std::string line;
    std::getline(lines, line);
    EXPECT_EQ(line, "t,interval,c");
    std::getline(lines, line);
    EXPECT_EQ(line, "10,10,0");
    std::getline(lines, line);
    EXPECT_EQ(line, "13,3,0");
    std::getline(lines, line);
    EXPECT_EQ(line, "20,7,0");
}

TEST(Sampler, RingWrapsKeepingNewestRows)
{
    TimeSeriesSampler s(cfg(1, 4));
    s.addColumn("t2", [&] { return static_cast<double>(s.ticks()); });

    for (int t = 0; t < 10; ++t)
        s.tick();
    EXPECT_TRUE(s.wrapped());
    EXPECT_EQ(s.totalSamples(), 10u);
    EXPECT_EQ(s.samples(), 4u); // bounded memory

    // Oldest surviving row first: ticks 7, 8, 9, 10.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(s.rowTick(i), 7 + i);
        EXPECT_EQ(s.rowValues(i)[0], static_cast<double>(7 + i));
    }

    // The CSV sees the same window, in the same order.
    std::istringstream lines(s.renderCsv());
    std::string line;
    std::getline(lines, line); // header
    std::getline(lines, line);
    EXPECT_EQ(line, "7,1,7");
    size_t rows = 1;
    while (std::getline(lines, line))
        ++rows;
    EXPECT_EQ(rows, 4u);
}

TEST(Sampler, ExactlyAtCapacityDoesNotWrap)
{
    TimeSeriesSampler s(cfg(1, 4));
    s.addColumn("c", [] { return 1.0; });
    for (int t = 0; t < 4; ++t)
        s.tick();
    EXPECT_EQ(s.totalSamples(), 4u);
    EXPECT_FALSE(s.wrapped());
    EXPECT_EQ(s.rowTick(0), 1u);
    s.tick();
    EXPECT_TRUE(s.wrapped());
    EXPECT_EQ(s.rowTick(0), 2u); // row 1 was overwritten
}

TEST(Sampler, ZeroCadenceOnlySamplesOnDemand)
{
    TimeSeriesSampler s(cfg(0, 8));
    s.addColumn("c", [] { return 2.0; });
    EXPECT_FALSE(s.tick(1000));
    EXPECT_EQ(s.samples(), 0u);
    s.sampleNow();
    EXPECT_EQ(s.samples(), 1u);
    EXPECT_EQ(s.rowTick(0), 1000u);
}

TEST(Sampler, CsvHeaderQuotesAwkwardColumnNames)
{
    TimeSeriesSampler s(cfg(1, 2));
    s.addColumn("a,b", [] { return 0.0; });
    std::istringstream lines(s.renderCsv());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header, "t,interval,\"a,b\"");
}

TEST(Sampler, WriteCsvRoundTripsThroughDisk)
{
    TimeSeriesSampler s(cfg(2, 8));
    s.addColumn("v", [] { return 1.25; });
    s.tick(6);
    const std::string path =
        testing::TempDir() + "xmig_obs_sampler_test.csv";
    ASSERT_TRUE(s.writeCsv(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[512] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), s.renderCsv());
    EXPECT_FALSE(s.writeCsv("/nonexistent-dir/samples.csv"));
}

} // namespace
} // namespace xmig::obs
