/**
 * @file
 * xmig-sentinel linter tests: one positive and one negative fixture
 * per rule, the suppression grammar (including wrapped
 * justifications and malformed comments), the baseline round-trip,
 * and the report renderers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "../tools/xmig_lint/lint.hpp"

using namespace xmig::lint;

namespace {

/** Rules triggered in `content` at `path`, as a sorted list. */
std::vector<std::string>
rulesIn(const std::string &path, const std::string &content)
{
    std::vector<std::string> rules;
    for (const Finding &f : lintFile(path, content))
        rules.push_back(f.rule);
    std::sort(rules.begin(), rules.end());
    return rules;
}

bool
hasRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) { return f.rule == rule; });
}

} // namespace

// ---------------------------------------------------------------------------
// no-wallclock
// ---------------------------------------------------------------------------

TEST(NoWallclock, FlagsChronoClockTypes)
{
    const std::string src = "void f() {\n"
                            "  auto t = std::chrono::steady_clock::now();\n"
                            "}\n";
    const auto rules = rulesIn("src/core/f.cpp", src);
    ASSERT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0], "no-wallclock");
}

TEST(NoWallclock, FlagsCallPositionOnly)
{
    // `return clock();` is a call; `uint64_t clock() const;` is a
    // declaration and `tr.clock()` a member access — both fine.
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "uint64_t g() { return clock(); }\n"),
              std::vector<std::string>{"no-wallclock"});
    EXPECT_TRUE(rulesIn("src/core/f.hpp",
                        "struct T { uint64_t clock() const; };\n")
                    .empty());
    EXPECT_TRUE(rulesIn("src/core/f.cpp",
                        "uint64_t g(Tracer &tr) { return tr.clock(); }\n")
                    .empty());
    EXPECT_TRUE(rulesIn("src/core/f.cpp",
                        "uint64_t Tracer::clock() { return c_; }\n")
                    .empty());
}

TEST(NoWallclock, FlagsRandomnessAndTimeIncludes)
{
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "int g() { std::random_device rd; return 0; }\n"),
              std::vector<std::string>{"no-wallclock"});
    EXPECT_EQ(rulesIn("src/core/f.cpp", "#include <ctime>\n"),
              std::vector<std::string>{"no-wallclock"});
    EXPECT_TRUE(rulesIn("src/core/f.cpp", "#include <vector>\n").empty());
}

TEST(NoWallclock, ProfilingSubsystemIsExempt)
{
    const std::string src = "void f() {\n"
                            "  auto t = std::chrono::steady_clock::now();\n"
                            "}\n";
    EXPECT_TRUE(rulesIn("src/obs/prof.cpp", src).empty());
    EXPECT_TRUE(rulesIn("src/obs/prof.hpp", src).empty());
    // ...but the rest of obs/ is not.
    EXPECT_FALSE(rulesIn("src/obs/trace.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// unordered-output
// ---------------------------------------------------------------------------

namespace {

const char kUnorderedLoop[] =
    "void dump(const std::unordered_map<int, int> &table) {\n"
    "  for (const auto &[k, v] : table) {\n"
    "    use(k, v);\n"
    "  }\n"
    "}\n";

} // namespace

TEST(UnorderedOutput, FlagsRangeForInOutputTu)
{
    const std::string src = std::string(kUnorderedLoop) +
                            "void save() { std::ofstream out(\"x\"); }\n";
    EXPECT_EQ(rulesIn("src/obs/export.cpp", src),
              std::vector<std::string>{"unordered-output"});
}

TEST(UnorderedOutput, SilentWithoutOutputMarkers)
{
    // Same loop, but the TU never writes CSV/JSONL/trace output.
    EXPECT_TRUE(rulesIn("src/obs/export.cpp", kUnorderedLoop).empty());
}

TEST(UnorderedOutput, OrderedContainersAreFine)
{
    const std::string src =
        "void dump(const std::map<int, int> &table) {\n"
        "  std::ofstream out(\"x\");\n"
        "  for (const auto &[k, v] : table) use(k, v);\n"
        "}\n";
    EXPECT_TRUE(rulesIn("src/obs/export.cpp", src).empty());
}

TEST(UnorderedOutput, MemberDeclaredInHeaderIteratedInCpp)
{
    // The two-pass design: the member's unordered type is only
    // visible in the header, the loop and the output marker only in
    // the .cpp.
    const std::string hpp =
        "struct Registry { std::unordered_map<int, int> table_; };\n";
    const std::string cpp =
        "void Registry::dump() {\n"
        "  std::ofstream out(\"x\");\n"
        "  for (auto it = table_.begin(); it != table_.end(); ++it)\n"
        "    use(*it);\n"
        "}\n";
    const auto findings = lintFiles(
        {{"src/obs/registry.hpp", hpp}, {"src/obs/registry.cpp", cpp}});
    ASSERT_TRUE(hasRule(findings, "unordered-output"));
    EXPECT_EQ(findings[0].file, "src/obs/registry.cpp");
}

// ---------------------------------------------------------------------------
// pointer-order
// ---------------------------------------------------------------------------

TEST(PointerOrder, FlagsPointerKeyedContainersAndCasts)
{
    EXPECT_EQ(rulesIn("src/core/f.cpp", "std::map<Node *, int> idx;\n"),
              std::vector<std::string>{"pointer-order"});
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "size_t h = std::hash<Node *>{}(n);\n"),
              std::vector<std::string>{"pointer-order"});
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "auto v = reinterpret_cast<uintptr_t>(p);\n"),
              std::vector<std::string>{"pointer-order"});
}

TEST(PointerOrder, ValueKeysAreFine)
{
    EXPECT_TRUE(
        rulesIn("src/core/f.cpp", "std::map<uint64_t, int> idx;\n")
            .empty());
    EXPECT_TRUE(
        rulesIn("src/core/f.cpp", "std::set<std::string> names;\n")
            .empty());
}

// ---------------------------------------------------------------------------
// naked-mutex
// ---------------------------------------------------------------------------

TEST(NakedMutex, FlagsUnannotatedMutexMember)
{
    const std::string src = "class Pool {\n"
                            "  std::mutex mutex_;\n"
                            "  int jobs_ = 0;\n"
                            "};\n";
    EXPECT_EQ(rulesIn("src/sim/pool.hpp", src),
              std::vector<std::string>{"naked-mutex"});
}

TEST(NakedMutex, CapabilityAnnotationSatisfiesTheRule)
{
    const std::string src = "class Pool {\n"
                            "  std::mutex mutex_;\n"
                            "  int jobs_ XMIG_GUARDED_BY(mutex_) = 0;\n"
                            "};\n";
    EXPECT_TRUE(rulesIn("src/sim/pool.hpp", src).empty());
}

TEST(NakedMutex, LockGuardTemplateArgumentIsNotADeclaration)
{
    EXPECT_TRUE(rulesIn("src/sim/pool.cpp",
                        "void f(std::mutex &m) {\n"
                        "  std::lock_guard<std::mutex> lock(m);\n"
                        "}\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// contract-coverage
// ---------------------------------------------------------------------------

namespace {

std::string
longMethod(const std::string &qualifier, const std::string &firstStmt)
{
    return "void\n"
           "Widget::update(int v)" + qualifier + "\n"
           "{\n"
           "    " + firstStmt + "\n"
           "    a_ = v;\n"
           "    b_ = v + 1;\n"
           "    c_ = v + 2;\n"
           "    d_ = v + 3;\n"
           "    e_ = v + 4;\n"
           "    f_ = v + 5;\n"
           "}\n";
}

} // namespace

TEST(ContractCoverage, FlagsNonTrivialMutatorWithoutContract)
{
    const std::string src = longMethod("", "g_ = v;");
    EXPECT_EQ(rulesIn("src/core/widget.cpp", src),
              std::vector<std::string>{"contract-coverage"});
    // Same file outside the scoped trees: not this rule's business.
    EXPECT_TRUE(rulesIn("src/obs/widget.cpp", src).empty());
    EXPECT_TRUE(rulesIn("src/core/widget.hpp", src).empty());
}

TEST(ContractCoverage, ContractSitesSatisfyTheRule)
{
    EXPECT_TRUE(rulesIn("src/core/widget.cpp",
                        longMethod("", "XMIG_AUDIT(v >= 0, \"v\");"))
                    .empty());
    // Calls into audit helpers carry the contract for their caller.
    EXPECT_TRUE(rulesIn("src/core/widget.cpp",
                        longMethod("", "auditConsistency();"))
                    .empty());
}

TEST(ContractCoverage, ConstAndTrivialMethodsAreExempt)
{
    EXPECT_TRUE(rulesIn("src/core/widget.cpp",
                        longMethod(" const", "g_ = v;"))
                    .empty());
    EXPECT_TRUE(rulesIn("src/core/widget.cpp",
                        "void Widget::set(int v) { a_ = v; }\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// journal-in-hot-loop
// ---------------------------------------------------------------------------

TEST(JournalInHotLoop, FlagsDirectJournalCalls)
{
    EXPECT_EQ(rulesIn("src/core/engine.cpp",
                      "void f() { journal_->record(k, c, 1); }\n"),
              std::vector<std::string>{"journal-in-hot-loop"});
    EXPECT_EQ(rulesIn("src/multicore/machine.cpp",
                      "void f() { journal.setClock(refs); }\n"),
              std::vector<std::string>{"journal-in-hot-loop"});
    EXPECT_EQ(rulesIn("src/fault/watchdog.cpp",
                      "void f() { theJournal->dumpNow(\"x\"); }\n"),
              std::vector<std::string>{"journal-in-hot-loop"});
}

TEST(JournalInHotLoop, MacroUseAndObsSubsystemAreExempt)
{
    // The macro family is the blessed path: its raw token stream
    // never spells `<journal ident> -> record (`.
    EXPECT_TRUE(rulesIn("src/core/engine.cpp",
                        "void f() { XMIG_JOURNAL(journal_, k, c, 1); "
                        "XMIG_JOURNAL_CLOCK(journal_, refs); }\n")
                    .empty());
    // The journal's own home may call itself.
    EXPECT_TRUE(rulesIn("src/obs/journal.cpp",
                        "void g() { journal_->record(k, c); }\n")
                    .empty());
}

TEST(JournalInHotLoop, OnlyGatedMethodsAreBanned)
{
    // Lifecycle calls (export, arming) are not event emission.
    EXPECT_TRUE(rulesIn("src/sim/observe.cpp",
                        "void f() { journal_->writeJsonl(path); "
                        "journal_->setDumpPath(p); }\n")
                    .empty());
    // record() on a non-journal receiver is fine.
    EXPECT_TRUE(rulesIn("src/core/engine.cpp",
                        "void f() { sampler_->record(v); }\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// alloc-in-hot-loop
// ---------------------------------------------------------------------------

TEST(AllocInHotLoop, FlagsHeapAllocationInBatchBodies)
{
    EXPECT_EQ(rulesIn("src/multicore/machine.cpp",
                      "void accessBatch(const MemRef *r, size_t n) {\n"
                      "    buf_.push_back(r[0]);\n"
                      "}\n"),
              std::vector<std::string>{"alloc-in-hot-loop"});
    EXPECT_EQ(rulesIn("src/core/engine.cpp",
                      "void referenceBatch(const uint64_t *l, size_t "
                      "n) {\n"
                      "    auto p = std::make_unique<int>(4);\n"
                      "}\n"),
              std::vector<std::string>{"alloc-in-hot-loop"});
    EXPECT_EQ(rulesIn("src/cache/l1_filter.cpp",
                      "size_t filterBatch(const MemRef *r, size_t n) "
                      "{\n"
                      "    int *x = new int[n];\n"
                      "    return 0;\n"
                      "}\n"),
              std::vector<std::string>{"alloc-in-hot-loop"});
}

TEST(AllocInHotLoop, FlagsVirtualSeamAndScalarReentry)
{
    // Per-reference dispatch through the OeStore interface...
    EXPECT_EQ(rulesIn("src/core/engine.cpp",
                      "void referenceBatch(const uint64_t *l, size_t "
                      "n) {\n"
                      "    for (size_t i = 0; i < n; ++i)\n"
                      "        sum += store_.lookup(l[i], d);\n"
                      "}\n"),
              std::vector<std::string>{"alloc-in-hot-loop"});
    // ...and re-entry into the scalar per-reference entry point.
    EXPECT_EQ(rulesIn("src/multicore/machine.cpp",
                      "void accessBatch(const MemRef *r, size_t n) {\n"
                      "    for (size_t i = 0; i < n; ++i)\n"
                      "        access(r[i]);\n"
                      "}\n"),
              std::vector<std::string>{"alloc-in-hot-loop"});
}

TEST(AllocInHotLoop, FastEntryPointsAndNonBatchCodeAreFine)
{
    // Devirtualized *Fast calls are the blessed batched path.
    EXPECT_TRUE(rulesIn("src/core/engine.cpp",
                        "void referenceBatch(const uint64_t *l, "
                        "size_t n) {\n"
                        "    for (size_t i = 0; i < n; ++i)\n"
                        "        sum += soaStore_->lookupFast(l[i], "
                        "d);\n"
                        "}\n")
                    .empty());
    // Only *Batch bodies are hot; the scalar path may allocate.
    EXPECT_TRUE(rulesIn("src/core/engine.cpp",
                        "void warmup() { trace_.push_back(1); }\n")
                    .empty());
    // A *call* to a Batch function is not a definition.
    EXPECT_TRUE(rulesIn("src/sim/quadcore.cpp",
                        "void f() { m.accessBatch(buf, n); }\n")
                    .empty());
}

TEST(AllocInHotLoop, ColdFallbackArmCanBeSuppressed)
{
    const std::string src =
        "void accessBatch(const MemRef *r, size_t n) {\n"
        "    for (size_t i = 0; i < n; ++i) {\n"
        "        // xmig-lint: allow(alloc-in-hot-loop) -- exact\n"
        "        // fallback, cold path.\n"
        "        access(r[i]);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(rulesIn("src/multicore/machine.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppression, AllowOnPrecedingLineSilencesTheFinding)
{
    const std::string src =
        "// xmig-lint: allow(no-wallclock) -- watchdog, host-only\n"
        "uint64_t g() { return clock(); }\n";
    EXPECT_TRUE(rulesIn("src/core/f.cpp", src).empty());
}

TEST(Suppression, WrappedJustificationStillReachesTheCode)
{
    // The justification spills onto a second comment line; the
    // suppression must still reach the first code line after the run.
    const std::string src =
        "// xmig-lint: allow(no-wallclock) -- watchdog oracle:\n"
        "// host time bounds the harness, never a sim result.\n"
        "uint64_t g() { return clock(); }\n";
    EXPECT_TRUE(rulesIn("src/core/f.cpp", src).empty());
}

TEST(Suppression, DoesNotLeakPastItsSite)
{
    const std::string src =
        "// xmig-lint: allow(no-wallclock) -- first site only\n"
        "uint64_t g() { return clock(); }\n"
        "\n"
        "uint64_t h() { return clock(); }\n";
    const auto findings = lintFile("src/core/f.cpp", src);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 4u);
}

TEST(Suppression, OnlyNamedRulesAreSilenced)
{
    const std::string src =
        "// xmig-lint: allow(pointer-order) -- wrong rule\n"
        "uint64_t g() { return clock(); }\n";
    EXPECT_EQ(rulesIn("src/core/f.cpp", src),
              std::vector<std::string>{"no-wallclock"});
}

TEST(Suppression, MalformedCommentsAreFindings)
{
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "// xmig-lint: allow(no-wallclock)\n"
                      "int x = 0;\n"),
              std::vector<std::string>{"bad-suppression"});
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "// xmig-lint: allow(no-such-rule) -- why\n"
                      "int x = 0;\n"),
              std::vector<std::string>{"bad-suppression"});
    EXPECT_EQ(rulesIn("src/core/f.cpp",
                      "// xmig-lint: see the docs\n"
                      "int x = 0;\n"),
              std::vector<std::string>{"bad-suppression"});
}

// ---------------------------------------------------------------------------
// Baseline round-trip
// ---------------------------------------------------------------------------

TEST(Baseline, RoundTripAbsolvesExactlyTheRecordedFindings)
{
    const std::string src = "uint64_t g() { return clock(); }\n"
                            "std::map<Node *, int> idx;\n";
    const auto findings = lintFile("src/core/f.cpp", src);
    ASSERT_EQ(findings.size(), 2u);

    const std::string doc = renderBaseline(findings);
    const auto baseline = parseBaseline(doc);
    EXPECT_EQ(baseline.size(), 2u);

    auto [fresh, grandfathered] =
        partitionAgainstBaseline(findings, baseline);
    EXPECT_TRUE(fresh.empty());
    EXPECT_EQ(grandfathered.size(), 2u);
}

TEST(Baseline, NewFindingsSurviveThePartition)
{
    const auto oldFindings =
        lintFile("src/core/f.cpp", "uint64_t g() { return clock(); }\n");
    const auto baseline = parseBaseline(renderBaseline(oldFindings));

    const auto now = lintFile("src/core/f.cpp",
                              "uint64_t g() { return clock(); }\n"
                              "std::map<Node *, int> idx;\n");
    auto [fresh, grandfathered] = partitionAgainstBaseline(now, baseline);
    ASSERT_EQ(fresh.size(), 1u);
    EXPECT_EQ(fresh[0].rule, "pointer-order");
    EXPECT_EQ(grandfathered.size(), 1u);
}

TEST(Baseline, KeysAreLineNumberInsensitive)
{
    const auto before =
        lintFile("src/core/f.cpp", "uint64_t g() { return clock(); }\n");
    const auto baseline = parseBaseline(renderBaseline(before));
    // The same source line drifts 3 lines down; the key still holds.
    const auto after = lintFile("src/core/f.cpp",
                                "\n\n\n"
                                "uint64_t g() { return clock(); }\n");
    auto [fresh, grandfathered] =
        partitionAgainstBaseline(after, baseline);
    EXPECT_TRUE(fresh.empty());
    EXPECT_EQ(grandfathered.size(), 1u);
}

TEST(Baseline, EachEntryAbsolvesAtMostOneFinding)
{
    const auto one =
        lintFile("src/core/f.cpp", "uint64_t g() { return clock(); }\n");
    const auto baseline = parseBaseline(renderBaseline(one));
    // Two identical lines now produce two identical keys; the single
    // baseline entry must absolve only one of them.
    const auto two = lintFile("src/core/f.cpp",
                              "uint64_t g() { return clock(); }\n"
                              "uint64_t g() { return clock(); }\n");
    auto [fresh, grandfathered] = partitionAgainstBaseline(two, baseline);
    EXPECT_EQ(fresh.size(), 1u);
    EXPECT_EQ(grandfathered.size(), 1u);
}

// ---------------------------------------------------------------------------
// Renderers and compile_commands
// ---------------------------------------------------------------------------

TEST(Render, TextJsonAndSarifNameTheFinding)
{
    const auto findings =
        lintFile("src/core/f.cpp", "uint64_t g() { return clock(); }\n");
    ASSERT_EQ(findings.size(), 1u);

    const std::string text = renderText(findings);
    EXPECT_NE(text.find("src/core/f.cpp:1: no-wallclock:"),
              std::string::npos);

    const std::string json = renderJson(findings);
    EXPECT_NE(json.find("\"rule\""), std::string::npos);
    EXPECT_NE(json.find("no-wallclock"), std::string::npos);

    const std::string sarif = renderSarif(findings);
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("no-wallclock"), std::string::npos);
    EXPECT_NE(sarif.find("src/core/f.cpp"), std::string::npos);
}

TEST(CompileCommands, ExtractsFileEntries)
{
    const std::string doc =
        "[\n"
        "  {\"directory\": \"/b\", \"command\": \"c++ -c a.cpp\",\n"
        "   \"file\": \"/repo/src/a.cpp\"},\n"
        "  {\"directory\": \"/b\", \"command\": \"c++ -c b.cpp\",\n"
        "   \"file\": \"/repo/src/b.cpp\"}\n"
        "]\n";
    const auto files = filesFromCompileCommands(doc);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], "/repo/src/a.cpp");
    EXPECT_EQ(files[1], "/repo/src/b.cpp");
}

TEST(Rules, CatalogueIsClosed)
{
    for (const std::string &r : allRules())
        EXPECT_TRUE(knownRule(r));
    EXPECT_FALSE(knownRule("no-such-rule"));
}
