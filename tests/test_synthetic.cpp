/**
 * @file
 * Unit tests for the synthetic element streams of section 3.3.
 */

#include <gtest/gtest.h>

#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

TEST(CircularStream, ProducesWrappingSequence)
{
    CircularStream s(4);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), 0u);
}

TEST(HalfRandomStream, AlternatesHalvesEveryMReferences)
{
    const uint64_t n = 1000, m = 50;
    HalfRandomStream s(n, m);
    for (int phase = 0; phase < 10; ++phase) {
        const bool low = phase % 2 == 0;
        for (uint64_t i = 0; i < m; ++i) {
            const uint64_t e = s.next();
            if (low) {
                ASSERT_LT(e, n / 2) << "phase " << phase;
            } else {
                ASSERT_GE(e, n / 2) << "phase " << phase;
                ASSERT_LT(e, n);
            }
        }
    }
}

TEST(HalfRandomStream, CoversBothHalves)
{
    HalfRandomStream s(100, 10);
    uint64_t lo = 0, hi = 0;
    for (int i = 0; i < 1000; ++i)
        (s.next() < 50 ? lo : hi) += 1;
    EXPECT_EQ(lo, 500u);
    EXPECT_EQ(hi, 500u);
}

TEST(UniformRandomStream, StaysInRangeAndSpreads)
{
    UniformRandomStream s(16);
    uint64_t hist[16] = {};
    for (int i = 0; i < 16000; ++i) {
        const uint64_t e = s.next();
        ASSERT_LT(e, 16u);
        ++hist[e];
    }
    for (uint64_t h : hist)
        EXPECT_GT(h, 600u); // ~1000 expected per bin
}

TEST(StrideStream, AppliesStrideModulo)
{
    StrideStream s(10, 3);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), 6u);
    EXPECT_EQ(s.next(), 9u);
    EXPECT_EQ(s.next(), 2u); // wrapped
}

TEST(Streams, DeterministicAcrossInstances)
{
    HalfRandomStream a(1000, 30, 5), b(1000, 30, 5);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(a.next(), b.next());
}

} // namespace
} // namespace xmig
