/**
 * @file
 * The central correctness property of the postponed-update scheme:
 * AffinityEngine (Figure 2 datapath with ArKind::Exact) computes
 * element-for-element the same affinities as the direct O(|S|)
 * implementation of Definition 1.
 *
 * Two regimes are checked:
 *  - distinct-LRU windows: exact equivalence on arbitrary streams;
 *  - FIFO windows: exact equivalence on streams that never repeat an
 *    element within |R| references (no window duplicates, so the two
 *    semantics coincide); Circular provides such streams.
 *
 * Wide affinity widths are used so saturation (a hardware concession
 * the direct engine does not model) cannot fire.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/direct_engine.hpp"
#include "core/engine.hpp"
#include "core/oe_store.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

using Param = std::tuple<size_t /*window*/, uint64_t /*universe*/,
                         uint64_t /*seed*/>;

class LruEquivalenceTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(LruEquivalenceTest, RandomStreamsMatchExactly)
{
    const auto [window, universe, seed] = GetParam();

    EngineConfig ec;
    ec.affinityBits = 40; // no saturation
    ec.windowSize = window;
    ec.window = WindowKind::DistinctLru;
    ec.ar = ArKind::Exact;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine postponed(ec, store);

    DirectEngineConfig dc;
    dc.windowSize = window;
    dc.window = WindowKind::DistinctLru;
    DirectAffinityEngine direct(dc);

    Rng rng(seed);
    for (int t = 0; t < 6000; ++t) {
        const uint64_t e = rng.below(universe);
        const int64_t ae_fast = postponed.reference(e).ae;
        const int64_t ae_ref = direct.reference(e);
        ASSERT_EQ(ae_fast, ae_ref) << "A_e diverged at t=" << t;
        ASSERT_EQ(postponed.windowAffinity(), direct.windowAffinity())
            << "A_R diverged at t=" << t;
    }
    // Final affinities of every element must agree.
    for (uint64_t e = 0; e < universe; ++e) {
        const auto a = postponed.affinityOf(e);
        const auto b = direct.affinityOf(e);
        ASSERT_EQ(a.has_value(), b.has_value()) << "e=" << e;
        if (a) {
            ASSERT_EQ(*a, *b) << "e=" << e;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LruEquivalenceTest,
    ::testing::Values(Param{4, 12, 1}, Param{16, 40, 2},
                      Param{16, 17, 3}, Param{64, 200, 4},
                      Param{100, 150, 5}, Param{7, 100, 6}));

class FifoEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>>
{
};

TEST_P(FifoEquivalenceTest, NonRepeatingStreamsMatchExactly)
{
    const auto [window, universe] = GetParam();
    ASSERT_GT(universe, window) << "stream must not self-collide";

    EngineConfig ec;
    ec.affinityBits = 40;
    ec.windowSize = window;
    ec.window = WindowKind::Fifo;
    ec.ar = ArKind::Exact;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine postponed(ec, store);

    DirectEngineConfig dc;
    dc.windowSize = window;
    dc.window = WindowKind::Fifo;
    DirectAffinityEngine direct(dc);

    CircularStream stream(universe);
    for (int t = 0; t < 8000; ++t) {
        const uint64_t e = stream.next();
        ASSERT_EQ(postponed.reference(e).ae, direct.reference(e))
            << "A_e diverged at t=" << t;
        ASSERT_EQ(postponed.windowAffinity(), direct.windowAffinity())
            << "A_R diverged at t=" << t;
    }
    for (uint64_t e = 0; e < universe; ++e) {
        const auto a = postponed.affinityOf(e);
        const auto b = direct.affinityOf(e);
        ASSERT_EQ(a.has_value(), b.has_value()) << "e=" << e;
        if (a) {
            ASSERT_EQ(*a, *b) << "e=" << e;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FifoEquivalenceTest,
    ::testing::Values(std::make_tuple(4, 9), std::make_tuple(16, 33),
                      std::make_tuple(100, 300),
                      std::make_tuple(128, 1000)));

TEST(PostponedUpdateInvariants, IeOeConversionsRoundTrip)
{
    // While an element is outside R, its O_e entry must keep
    // A_e + Delta invariant: re-referencing after arbitrary history
    // yields the same A_e as the direct engine — already covered by
    // the suites above — and A_e of a first touch is exactly 0.
    EngineConfig ec;
    ec.affinityBits = 40;
    ec.windowSize = 8;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    CircularStream stream(100);
    for (int t = 0; t < 100; ++t) {
        const RefOutcome out = engine.reference(stream.next());
        ASSERT_EQ(out.ae, 0) << "first touch must have A_e = 0";
    }
}

TEST(PostponedUpdateInvariants, DeltaTracksSignHistory)
{
    // Every reference adds exactly +/-1 to Delta.
    EngineConfig ec;
    ec.affinityBits = 40;
    ec.windowSize = 16;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    Rng rng(3);
    int64_t prev = engine.delta();
    for (int t = 0; t < 2000; ++t) {
        engine.reference(rng.below(100));
        const int64_t d = engine.delta();
        ASSERT_EQ(std::abs(d - prev), 1);
        prev = d;
    }
}

} // namespace
} // namespace xmig
