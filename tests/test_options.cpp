/**
 * @file
 * Tests for the shared bench CLI options and the quad-core warm-up
 * support.
 */

#include <gtest/gtest.h>

#include "sim/options.hpp"
#include "sim/quadcore.hpp"

namespace xmig {
namespace {

BenchOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return BenchOptions::parse(static_cast<int>(args.size()),
                               const_cast<char **>(args.data()));
}

TEST(BenchOptions, Defaults)
{
    const BenchOptions opt = parse({});
    EXPECT_EQ(opt.instructions, 20'000'000u);
    EXPECT_EQ(opt.warmup, 0u);
    EXPECT_EQ(opt.seed, 42u);
    EXPECT_TRUE(opt.benchmarks.empty());
}

TEST(BenchOptions, ParsesEveryFlag)
{
    const BenchOptions opt =
        parse({"--instr", "1000", "--warmup", "500", "--seed", "7",
               "--bench", "179.art", "--bench", "health"});
    EXPECT_EQ(opt.instructions, 1000u);
    EXPECT_EQ(opt.warmup, 500u);
    EXPECT_EQ(opt.seed, 7u);
    ASSERT_EQ(opt.benchmarks.size(), 2u);
    EXPECT_EQ(opt.benchmarks[0], "179.art");
    EXPECT_EQ(opt.benchmarks[1], "health");
}

TEST(BenchOptions, ScaleMultipliesBudget)
{
    const BenchOptions opt = parse({"--instr", "1000", "--scale", "2.5"});
    EXPECT_EQ(opt.instructions, 2500u);
}

TEST(BenchOptions, ParsesFaultPlan)
{
    const BenchOptions opt =
        parse({"--fault-plan", "seed=7;at=1000:core_off=2"});
    EXPECT_EQ(opt.faultPlan, "seed=7;at=1000:core_off=2");
}

TEST(BenchOptions, ParsesJobsAndSmoke)
{
    unsetenv("XMIG_JOBS");
    EXPECT_EQ(parse({}).jobs, 0u); // 0 = auto (one per host core)
    EXPECT_FALSE(parse({}).smoke);
    EXPECT_EQ(parse({"--jobs", "8"}).jobs, 8u);
    EXPECT_EQ(parse({"--jobs", "1"}).jobs, 1u);
    EXPECT_EQ(parse({"--jobs", "4096"}).jobs, 4096u);
    EXPECT_TRUE(parse({"--smoke"}).smoke);
}

TEST(BenchOptions, JobsFromEnvironment)
{
    setenv("XMIG_JOBS", "3", 1);
    EXPECT_EQ(parse({}).jobs, 3u);
    // The command line wins over the environment.
    EXPECT_EQ(parse({"--jobs", "5"}).jobs, 5u);
    unsetenv("XMIG_JOBS");
}

TEST(BenchOptions, TraceOutDegradesAutoJobsToSerial)
{
    unsetenv("XMIG_JOBS");
    // No explicit --jobs: the auto default quietly serializes, since
    // the Tracer session is per-process.
    const BenchOptions opt = parse({"--trace-out", "/tmp/t.json"});
    EXPECT_EQ(opt.jobs, 1u);
    // An explicit --jobs 1 is compatible, not a contradiction.
    const BenchOptions serial =
        parse({"--trace-out", "/tmp/t.json", "--jobs", "1"});
    EXPECT_EQ(serial.jobs, 1u);
}

// XMIG_FATAL exits with status 1; each bad value must die with a
// message naming the flag instead of silently parsing as 0.
TEST(BenchOptionsDeathTest, RejectsNegativeCount)
{
    EXPECT_EXIT(parse({"--instr", "-5"}),
                ::testing::ExitedWithCode(1), "--instr");
}

TEST(BenchOptionsDeathTest, RejectsNonNumericCount)
{
    EXPECT_EXIT(parse({"--warmup", "lots"}),
                ::testing::ExitedWithCode(1), "--warmup");
}

TEST(BenchOptionsDeathTest, RejectsTrailingGarbage)
{
    EXPECT_EXIT(parse({"--sample-every", "100k"}),
                ::testing::ExitedWithCode(1), "--sample-every");
}

TEST(BenchOptionsDeathTest, RejectsMissingValue)
{
    EXPECT_EXIT(parse({"--instr"}), ::testing::ExitedWithCode(1),
                "requires a value");
}

TEST(BenchOptionsDeathTest, RejectsOverflowingCount)
{
    // 2^64 = 18446744073709551616 does not fit in uint64_t.
    EXPECT_EXIT(parse({"--instr", "18446744073709551616"}),
                ::testing::ExitedWithCode(1), "overflows");
}

TEST(BenchOptionsDeathTest, RejectsNonPositiveScale)
{
    EXPECT_EXIT(parse({"--scale", "0"}),
                ::testing::ExitedWithCode(1), "--scale");
    EXPECT_EXIT(parse({"--scale", "nan"}),
                ::testing::ExitedWithCode(1), "--scale");
}

TEST(BenchOptionsDeathTest, RejectsMalformedFaultPlan)
{
    EXPECT_EXIT(parse({"--fault-plan", "at=5:flip=bogus"}),
                ::testing::ExitedWithCode(1), "fault-plan");
}

// --jobs 0 is meaningless ("auto" is spelled by omitting the flag),
// and garbage or absurd counts must die loudly (xmig-iron strictness).
TEST(BenchOptionsDeathTest, RejectsBadJobs)
{
    unsetenv("XMIG_JOBS");
    EXPECT_EXIT(parse({"--jobs", "0"}),
                ::testing::ExitedWithCode(1), "--jobs");
    EXPECT_EXIT(parse({"--jobs", "many"}),
                ::testing::ExitedWithCode(1), "--jobs");
    EXPECT_EXIT(parse({"--jobs", "-2"}),
                ::testing::ExitedWithCode(1), "--jobs");
    EXPECT_EXIT(parse({"--jobs", "4097"}),
                ::testing::ExitedWithCode(1), "--jobs");
}

TEST(BenchOptionsDeathTest, RejectsBadJobsEnvironment)
{
    setenv("XMIG_JOBS", "zero", 1);
    EXPECT_EXIT(parse({}), ::testing::ExitedWithCode(1), "XMIG_JOBS");
    unsetenv("XMIG_JOBS");
}

// Explicitly asking for a parallel sweep *and* a per-process trace
// session is a contradiction, not something to silently serialize.
TEST(BenchOptionsDeathTest, RejectsExplicitJobsWithTraceOut)
{
    unsetenv("XMIG_JOBS");
    EXPECT_EXIT(
        parse({"--trace-out", "/tmp/t.json", "--jobs", "4"}),
        ::testing::ExitedWithCode(1), "--trace-out requires --jobs 1");
}

TEST(QuadcoreWarmup, ExcludesWarmupEvents)
{
    QuadcoreParams cold;
    cold.instructionsPerBenchmark = 2'000'000;
    const QuadcoreRow cold_row = runQuadcore("179.art", cold);

    QuadcoreParams warm = cold;
    warm.warmupInstructions = 4'000'000;
    const QuadcoreRow warm_row = runQuadcore("179.art", warm);

    // Counted instructions reflect only the measured window.
    EXPECT_NEAR(static_cast<double>(warm_row.instructions),
                static_cast<double>(cold_row.instructions),
                static_cast<double>(cold_row.instructions) * 0.15);
    // With the controller already trained, the measured window shows
    // far fewer migration-machine misses than the cold-start run.
    EXPECT_LT(warm_row.l2Misses4x, cold_row.l2Misses4x / 2);
    // The baseline (capacity-bound) miss rate barely changes.
    EXPECT_NEAR(static_cast<double>(warm_row.l2MissesBaseline),
                static_cast<double>(cold_row.l2MissesBaseline),
                static_cast<double>(cold_row.l2MissesBaseline) * 0.25);
}

} // namespace
} // namespace xmig
