/**
 * @file
 * Behavioral properties of the affinity algorithm (sections 3.2-3.3):
 * negative-feedback balance, Circular/HalfRandom splitting, the
 * N > 2|R| splittability threshold, and the low-pass bound on the
 * transition frequency.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/snapshot.hpp"

namespace xmig {
namespace {

SnapshotResult
snap(ElementStream &s, uint64_t n, size_t window, uint64_t refs,
     ArKind ar = ArKind::Exact, WindowKind wk = WindowKind::Fifo)
{
    SnapshotParams p;
    p.numElements = n;
    p.references = refs;
    p.engine.windowSize = window;
    p.engine.ar = ar;
    p.engine.window = wk;
    return runAffinitySnapshot(s, p);
}

double
balance(const SnapshotResult &r)
{
    const uint64_t lo = std::min(r.positive, r.negative);
    const uint64_t hi = std::max<uint64_t>(1, std::max(r.positive,
                                                       r.negative));
    return static_cast<double>(lo) / static_cast<double>(hi);
}

TEST(AffinityBehavior, CircularSplitsBalancedAndContiguous)
{
    CircularStream s(4000);
    const SnapshotResult r = snap(s, 4000, 100, 1'000'000);
    EXPECT_GT(balance(r), 0.9);
    // A good Circular split is a handful of contiguous segments.
    EXPECT_LE(r.signSegments, 8u);
    // Figure 3 reports ~1 transition per 2000 references.
    EXPECT_LT(r.transitionFrequency, 0.002);
}

TEST(AffinityBehavior, HalfRandomSplitsAlongTheHalves)
{
    HalfRandomStream s(4000, 300);
    const SnapshotResult r = snap(s, 4000, 100, 1'000'000);
    EXPECT_GT(balance(r), 0.9);
    // The natural split is low half vs high half: 2 segments.
    EXPECT_LE(r.signSegments, 4u);
    // One phase change every 300 refs; allow sign flapping at phase
    // boundaries.
    EXPECT_LT(r.transitionFrequency, 0.02);
}

TEST(AffinityBehavior, UniformRandomIsNotSplittable)
{
    UniformRandomStream s(4000);
    const SnapshotResult r = snap(s, 4000, 100, 500'000);
    // However balanced the signs, raw-affinity transitions occur
    // about every other reference (section 3.4).
    EXPECT_GT(r.transitionFrequency, 0.4);
}

/**
 * Fraction of the positive set that stays positive when the run is
 * extended by half a working-set pass. A genuine split is stable; the
 * degenerate below-threshold "split" just tracks the R-window, so its
 * positive set shifts with it.
 */
double
signStability(uint64_t n, size_t window)
{
    CircularStream s1(n), s2(n);
    const SnapshotResult a = snap(s1, n, window, 500'000);
    const SnapshotResult b = snap(s2, n, window, 500'000 + n / 2);
    uint64_t pos = 0, stable = 0;
    for (uint64_t e = 0; e < n; ++e) {
        if (a.affinity[e] >= 0) {
            ++pos;
            stable += b.affinity[e] >= 0 ? 1 : 0;
        }
    }
    return pos == 0 ? 0.0
                    : static_cast<double>(stable) /
                          static_cast<double>(pos);
}

TEST(AffinityBehavior, CircularBelowThresholdDoesNotSplit)
{
    // Section 3.3: Circular splits iff N > 2|R|. Below the threshold
    // every element spends at least half its time inside R, the
    // negative feedback cannot act, and the positive subset is just
    // the current R-window contents — it moves with the window.
    EXPECT_LT(signStability(200, 128), 0.6);
    // With N barely above |R| the moving window covers most of the
    // set, so instability is bounded; the giveaway is the positive
    // subset pinning at |R| instead of N/2.
    CircularStream s(150);
    const SnapshotResult r = snap(s, 150, 128, 500'000);
    EXPECT_GT(std::max(r.positive, r.negative), 150u * 2 / 3);
}

TEST(AffinityBehavior, CircularAboveThresholdIsStable)
{
    EXPECT_GT(signStability(300, 128), 0.85);
    EXPECT_GT(signStability(400, 128), 0.85);
}

TEST(AffinityBehavior, CircularAboveThresholdSplits)
{
    CircularStream s(300);
    const SnapshotResult r = snap(s, 300, 128, 500'000);
    EXPECT_GT(balance(r), 0.7);
}

TEST(AffinityBehavior, TransitionFrequencyLowPassBound)
{
    // Section 3.3: after enough time, Circular transitions never
    // exceed one per 2|R| references.
    for (size_t window : {50u, 100u, 200u}) {
        CircularStream s(4000);
        SnapshotParams p;
        p.numElements = 4000;
        p.references = 2'000'000;
        p.engine.windowSize = window;
        const SnapshotResult r = runAffinitySnapshot(s, p);
        EXPECT_LT(r.transitionFrequency,
                  1.0 / (2.0 * static_cast<double>(window)) * 1.5)
            << "|R| = " << window;
    }
}

TEST(AffinityBehavior, Figure2VariantAlsoSplitsCircular)
{
    CircularStream s(4000);
    const SnapshotResult r =
        snap(s, 4000, 100, 1'000'000, ArKind::Figure2);
    EXPECT_GT(balance(r), 0.8);
    EXPECT_LT(r.transitionFrequency, 0.05);
}

TEST(AffinityBehavior, DistinctLruWindowAlsoSplitsCircular)
{
    CircularStream s(4000);
    const SnapshotResult r = snap(s, 4000, 100, 1'000'000,
                                  ArKind::Exact,
                                  WindowKind::DistinctLru);
    EXPECT_GT(balance(r), 0.9);
    EXPECT_LT(r.transitionFrequency, 0.002);
}

TEST(AffinityBehavior, SaturationKeepsSixteenBitRange)
{
    CircularStream s(4000);
    SnapshotParams p;
    p.numElements = 4000;
    p.references = 3'000'000; // long enough to saturate
    p.engine.affinityBits = 16;
    const SnapshotResult r = runAffinitySnapshot(s, p);
    for (int64_t a : r.affinity) {
        EXPECT_GE(a, -(1 << 16)); // I_e + Delta can exceed 16 bits by
        EXPECT_LE(a, (1 << 16));  // at most one step's worth
    }
}

} // namespace
} // namespace xmig
