/**
 * @file
 * xmig-forge PlanGenerator: validity, determinism, and coverage of
 * the sampled plan space.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fuzz/plan_generator.hpp"

using namespace xmig;

namespace {

FaultPlan
mustParse(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(FaultPlan::parse(spec, &plan, &error))
        << spec << ": " << error;
    return plan;
}

} // namespace

TEST(PlanGenerator, EveryPlanParses)
{
    PlanGenerator gen(1234);
    for (int i = 0; i < 500; ++i) {
        const FuzzPlan plan = gen.next();
        ASSERT_FALSE(plan.statements.empty());
        mustParse(plan.spec());
    }
}

TEST(PlanGenerator, SameSeedSamePlans)
{
    PlanGenerator a(77);
    PlanGenerator b(77);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next().spec(), b.next().spec());
}

TEST(PlanGenerator, DifferentSeedsDiverge)
{
    PlanGenerator a(1);
    PlanGenerator b(2);
    int differing = 0;
    for (int i = 0; i < 20; ++i)
        differing += a.next().spec() != b.next().spec() ? 1 : 0;
    EXPECT_GT(differing, 15);
}

TEST(PlanGenerator, CoversEverySiteAndBothTriggers)
{
    PlanGenerator gen(9);
    std::set<FaultSite> sites;
    bool scheduled = false, rated = false;
    for (int i = 0; i < 400; ++i) {
        const FaultPlan plan = mustParse(gen.next().spec());
        for (const FaultRule &r : plan.scheduled) {
            sites.insert(r.site);
            scheduled = true;
        }
        for (const FaultRule &r : plan.rates) {
            sites.insert(r.site);
            rated = true;
        }
    }
    EXPECT_EQ(sites.size(), static_cast<size_t>(FaultSite::kCount))
        << "a 400-plan batch must hit all ten sites";
    EXPECT_TRUE(scheduled);
    EXPECT_TRUE(rated);
}

TEST(PlanGenerator, ExploresBoundaryShapes)
{
    PlanGenerator gen(42);
    bool tick_zero = false;       // an event scheduled at tick 0
    bool rate_one = false;        // a certain-fire rate
    bool rate_zero = false;       // an armed-but-silent rate
    bool duplicate = false;       // a statement repeated verbatim
    bool back_to_back = false;    // churn pair <= 1 tick apart
    bool bogus_core = false;      // a core id the machine must ignore
    for (int i = 0; i < 600; ++i) {
        const FuzzPlan fuzz = gen.next();
        std::set<std::string> seen;
        for (const std::string &s : fuzz.statements) {
            if (!seen.insert(s).second)
                duplicate = true;
        }
        const FaultPlan plan = mustParse(fuzz.spec());
        uint64_t off_tick = 0;
        bool have_off = false;
        for (const FaultRule &r : plan.scheduled) {
            tick_zero = tick_zero || r.at == 0;
            if (r.site == FaultSite::CoreOff) {
                off_tick = r.at;
                have_off = true;
                bogus_core = bogus_core || r.core >= 4;
            }
            if (r.site == FaultSite::CoreOn && have_off &&
                r.at - off_tick <= 1)
                back_to_back = true;
        }
        for (const FaultRule &r : plan.rates) {
            rate_one = rate_one || r.rate == 1.0;
            rate_zero = rate_zero || r.rate == 0.0;
        }
    }
    EXPECT_TRUE(tick_zero);
    EXPECT_TRUE(rate_one);
    EXPECT_TRUE(rate_zero);
    EXPECT_TRUE(duplicate);
    EXPECT_TRUE(back_to_back);
    EXPECT_TRUE(bogus_core);
}

TEST(PlanGenerator, CapsCoreChurnRates)
{
    GeneratorConfig config;
    PlanGenerator gen(5);
    for (int i = 0; i < 400; ++i) {
        const FaultPlan plan = mustParse(gen.next().spec());
        for (const FaultRule &r : plan.rates) {
            if (r.site == FaultSite::CoreOff ||
                r.site == FaultSite::CoreOn)
                EXPECT_LE(r.rate, config.maxChurnRate);
        }
    }
}

TEST(PlanGenerator, RespectsStatementBudget)
{
    GeneratorConfig config;
    config.maxStatements = 5;
    PlanGenerator gen(3, config);
    for (int i = 0; i < 200; ++i) {
        // seed= statement + budget, with one-statement slop for a
        // churn pair straddling the budget edge.
        EXPECT_LE(gen.next().statements.size(), size_t{5} + 2);
    }
}

TEST(PlanGenerator, GeneratedPlansRoundTripThroughToString)
{
    PlanGenerator gen(11);
    for (int i = 0; i < 200; ++i) {
        const FaultPlan plan = mustParse(gen.next().spec());
        const FaultPlan again = mustParse(plan.toString());
        EXPECT_EQ(plan, again) << plan.toString();
    }
}
