/**
 * @file
 * xmig-storm CLI hardening: the strict parseFuzzCli contract
 * (in-process) plus end-to-end exit-code checks against the real
 * xmig_fuzz binary — unknown flags and malformed budgets must exit 2
 * with usage text, distinct from exit 1 = failures found.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/fuzz_cli.hpp"

namespace xmig {
namespace {

FuzzCliParse
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "xmig_fuzz");
    return parseFuzzCli(static_cast<int>(args.size()), args.data());
}

TEST(FuzzCli, DefaultsAreUniformCampaign)
{
    const FuzzCliParse p = parse({});
    ASSERT_EQ(p.exitCode, -1);
    EXPECT_EQ(p.options.mode, FuzzCliOptions::Mode::Campaign);
    EXPECT_EQ(p.options.seed, 1u);
    EXPECT_EQ(p.options.plans, 200u);
    EXPECT_EQ(p.options.budget, 512u);
    EXPECT_EQ(p.options.batch, 16u);
    EXPECT_TRUE(p.options.minimize);
    EXPECT_TRUE(p.options.journal);
    EXPECT_FALSE(p.options.stormWorkloads);
}

TEST(FuzzCli, ParsesAFullSoakInvocation)
{
    const FuzzCliParse p = parse(
        {"--soak", "--seed", "7", "--budget", "128", "--batch", "8",
         "--jobs", "4", "--instr", "50000", "--bench", "179.art",
         "--corpus", "/tmp/corpus", "--repro-dir", "/tmp/repros",
         "--storm-workloads", "--no-journal", "--no-minimize"});
    ASSERT_EQ(p.exitCode, -1) << p.error;
    EXPECT_EQ(p.options.mode, FuzzCliOptions::Mode::Soak);
    EXPECT_EQ(p.options.seed, 7u);
    EXPECT_EQ(p.options.budget, 128u);
    EXPECT_EQ(p.options.batch, 8u);
    EXPECT_EQ(p.options.jobs, 4u);
    EXPECT_EQ(p.options.instructions, 50'000u);
    EXPECT_EQ(p.options.benchmark, "179.art");
    EXPECT_EQ(p.options.corpusDir, "/tmp/corpus");
    EXPECT_EQ(p.options.reproDir, "/tmp/repros");
    EXPECT_TRUE(p.options.stormWorkloads);
    EXPECT_FALSE(p.options.journal);
    EXPECT_FALSE(p.options.minimize);
}

TEST(FuzzCli, ReplayCarriesThePlan)
{
    const FuzzCliParse p =
        parse({"--replay", "seed=5;rate=0.01:bus_drop",
               "--workload-seed", "9"});
    ASSERT_EQ(p.exitCode, -1) << p.error;
    EXPECT_EQ(p.options.mode, FuzzCliOptions::Mode::Replay);
    EXPECT_EQ(p.options.replayPlan, "seed=5;rate=0.01:bus_drop");
    EXPECT_EQ(p.options.workloadSeed, 9u);
}

TEST(FuzzCli, HelpExitsZero)
{
    EXPECT_EQ(parse({"--help"}).exitCode, 0);
    EXPECT_EQ(parse({"-h"}).exitCode, 0);
    EXPECT_NE(std::string(fuzzCliUsage()).find("exit codes"),
              std::string::npos);
}

TEST(FuzzCli, UnknownFlagIsUsageError)
{
    const FuzzCliParse p = parse({"--frobnicate"});
    EXPECT_EQ(p.exitCode, 2);
    EXPECT_NE(p.error.find("unknown flag '--frobnicate'"),
              std::string::npos);
    // Typoed known flags too.
    EXPECT_EQ(parse({"--sead", "3"}).exitCode, 2);
}

TEST(FuzzCli, MalformedNumbersAreUsageErrors)
{
    for (const auto &args : std::vector<std::vector<const char *>>{
             {"--budget", "12x"},
             {"--budget", "-5"},
             {"--budget", ""},
             {"--plans", "two hundred"},
             {"--seed", "0x10"},
             {"--jobs", "4.5"},
         }) {
        const FuzzCliParse p = parse(args);
        EXPECT_EQ(p.exitCode, 2) << args[0] << " " << args[1];
        EXPECT_NE(p.error.find("malformed value"), std::string::npos)
            << p.error;
    }
}

TEST(FuzzCli, MissingAndZeroValuesAreUsageErrors)
{
    EXPECT_EQ(parse({"--budget"}).exitCode, 2);
    EXPECT_EQ(parse({"--bench"}).exitCode, 2);
    EXPECT_EQ(parse({"--replay"}).exitCode, 2);
    // Counts that must be positive.
    EXPECT_EQ(parse({"--plans", "0"}).exitCode, 2);
    EXPECT_EQ(parse({"--budget", "0"}).exitCode, 2);
    EXPECT_EQ(parse({"--batch", "0"}).exitCode, 2);
    EXPECT_EQ(parse({"--jobs", "0"}).exitCode, 2);
    EXPECT_EQ(parse({"--instr", "0"}).exitCode, 2);
    EXPECT_EQ(parse({"--jobs", "4096"}).exitCode, 2);
    // Seeds may legitimately be zero.
    EXPECT_EQ(parse({"--seed", "0"}).exitCode, -1);
    EXPECT_EQ(parse({"--workload-seed", "0"}).exitCode, -1);
}

TEST(FuzzCli, ConflictingModesAreUsageErrors)
{
    EXPECT_EQ(parse({"--guided", "--soak"}).exitCode, 2);
    EXPECT_EQ(parse({"--soak", "--self-test"}).exitCode, 2);
    EXPECT_EQ(
        parse({"--guided", "--replay", "seed=1"}).exitCode, 2);
    const FuzzCliParse p = parse({"--corpus", "/tmp/c"});
    EXPECT_EQ(p.exitCode, 2);
    EXPECT_NE(p.error.find("--corpus"), std::string::npos);
}

#ifdef XMIG_TOOLS_DIR

/** Run the real binary, return its exit code, capture its output. */
int
runTool(const std::string &args, std::string *out)
{
    const std::string cmd = std::string(XMIG_TOOLS_DIR) +
                            "/xmig_fuzz " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr)
        return -1;
    char buf[512];
    out->clear();
    while (fgets(buf, sizeof buf, pipe) != nullptr)
        *out += buf;
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(FuzzCliBinary, UsageErrorsExitTwoWithUsageText)
{
    std::string out;
    EXPECT_EQ(runTool("--frobnicate", &out), 2);
    EXPECT_NE(out.find("unknown flag '--frobnicate'"),
              std::string::npos);
    EXPECT_NE(out.find("usage: xmig_fuzz"), std::string::npos);

    EXPECT_EQ(runTool("--budget 12x", &out), 2);
    EXPECT_NE(out.find("malformed value for --budget"),
              std::string::npos);

    EXPECT_EQ(runTool("--guided --soak", &out), 2);
    EXPECT_NE(out.find("conflicting modes"), std::string::npos);
}

TEST(FuzzCliBinary, HelpExitsZeroAndCleanRunsExitZero)
{
    std::string out;
    EXPECT_EQ(runTool("--help", &out), 0);
    EXPECT_NE(out.find("usage: xmig_fuzz"), std::string::npos);

    // A tiny clean guided campaign: exit 0 and a coverage line.
    EXPECT_EQ(runTool("--guided --smoke --seed 1 --plans 4 --jobs 2",
                      &out),
              0);
    EXPECT_NE(out.find("coverage: counters_hit="), std::string::npos);
    EXPECT_NE(out.find("oracle_failures: none"), std::string::npos);
}

#endif // XMIG_TOOLS_DIR

} // namespace
} // namespace xmig
