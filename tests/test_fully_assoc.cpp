/**
 * @file
 * Unit and property tests for the O(1) fully-associative LRU cache.
 */

#include <gtest/gtest.h>

#include <list>
#include <tuple>

#include "cache/fully_assoc.hpp"
#include "util/rng.hpp"

namespace xmig {
namespace {

TEST(FullyAssocLru, HitAfterFill)
{
    FullyAssocLru cache(4);
    EXPECT_FALSE(cache.access(1));
    EXPECT_TRUE(cache.access(1));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(FullyAssocLru, EvictsLruOrder)
{
    FullyAssocLru cache(3);
    cache.access(1);
    cache.access(2);
    cache.access(3);
    cache.access(1); // 2 now LRU
    uint64_t victim = 0;
    bool evicted = false;
    cache.access(4, &victim, &evicted);
    EXPECT_TRUE(evicted);
    EXPECT_EQ(victim, 2u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(FullyAssocLru, ContainsDoesNotTouch)
{
    FullyAssocLru cache(2);
    cache.access(1);
    cache.access(2);
    // contains(1) must NOT refresh line 1...
    EXPECT_TRUE(cache.contains(1));
    uint64_t victim = 0;
    bool evicted = false;
    cache.access(3, &victim, &evicted);
    // ...so 1 is still the LRU victim.
    EXPECT_EQ(victim, 1u);
}

TEST(FullyAssocLru, StatsTrackHitsAndMisses)
{
    FullyAssocLru cache(2);
    cache.access(1);
    cache.access(1);
    cache.access(2);
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
}

/** Cross-check against a naive reference LRU over random streams. */
class FullyAssocLruPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>>
{
};

TEST_P(FullyAssocLruPropertyTest, MatchesReferenceModel)
{
    const auto [capacity, universe] = GetParam();
    FullyAssocLru cache(capacity);
    std::list<uint64_t> reference; // front = MRU
    Rng rng(capacity * 1000 + universe);

    for (int i = 0; i < 20000; ++i) {
        const uint64_t line = rng.below(universe);
        // Reference model.
        bool ref_hit = false;
        for (auto it = reference.begin(); it != reference.end(); ++it) {
            if (*it == line) {
                reference.erase(it);
                ref_hit = true;
                break;
            }
        }
        reference.push_front(line);
        if (reference.size() > capacity)
            reference.pop_back();

        ASSERT_EQ(cache.access(line), ref_hit) << "step " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullyAssocLruPropertyTest,
    ::testing::Values(std::make_tuple(1, 4), std::make_tuple(4, 16),
                      std::make_tuple(16, 24), std::make_tuple(64, 256),
                      std::make_tuple(256, 300)));

} // namespace
} // namespace xmig
