/**
 * @file
 * xmig-lens event journal (obs/journal.hpp): ring bounds and
 * overwrite accounting, sequence/clock stamping, JSONL export shape
 * (every line a complete JSON object), post-mortem dumps, and the
 * null-safety of the XMIG_JOURNAL macro family.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "obs/json.hpp"

namespace xmig::obs {
namespace {

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(line);
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Journal, StartsEmpty)
{
    Journal j(8);
    EXPECT_EQ(j.capacity(), 8u);
    EXPECT_EQ(j.size(), 0u);
    EXPECT_EQ(j.recorded(), 0u);
    EXPECT_EQ(j.dropped(), 0u);
    EXPECT_EQ(j.clock(), 0u);
}

TEST(Journal, RecordStampsSeqAndClock)
{
    Journal j(8);
    j.setClock(100);
    j.record(JournalKind::Migration, JournalCause::Threshold, 0, 1, 1);
    j.setClock(250);
    j.record(JournalKind::Transition, JournalCause::Threshold, 3);
    ASSERT_EQ(j.size(), 2u);
    EXPECT_EQ(j.eventAt(0).seq, 0u);
    EXPECT_EQ(j.eventAt(0).time, 100u);
    EXPECT_EQ(j.eventAt(0).kind, JournalKind::Migration);
    EXPECT_EQ(j.eventAt(0).cause, JournalCause::Threshold);
    EXPECT_EQ(j.eventAt(0).arg[0], 0);
    EXPECT_EQ(j.eventAt(0).arg[1], 1);
    EXPECT_EQ(j.eventAt(1).seq, 1u);
    EXPECT_EQ(j.eventAt(1).time, 250u);
}

TEST(Journal, RingOverwritesOldestPastCapacity)
{
    Journal j(4);
    for (int64_t i = 0; i < 10; ++i)
        j.record(JournalKind::Transition, JournalCause::None, i);
    EXPECT_EQ(j.size(), 4u);
    EXPECT_EQ(j.recorded(), 10u);
    EXPECT_EQ(j.dropped(), 6u);
    // The retained window is the newest 4 events, oldest first, and
    // seq numbers keep counting across the overwrites.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(j.eventAt(i).seq, 6u + i);
        EXPECT_EQ(j.eventAt(i).arg[0], static_cast<int64_t>(6 + i));
    }
}

TEST(Journal, ClearKeepsClockAndDumpPath)
{
    Journal j(4);
    j.setClock(42);
    j.setDumpPath("/tmp/never-written.jsonl");
    j.record(JournalKind::Checkpoint, JournalCause::Explicit, 7);
    j.clear();
    EXPECT_EQ(j.size(), 0u);
    EXPECT_EQ(j.recorded(), 0u);
    EXPECT_EQ(j.dropped(), 0u);
    EXPECT_EQ(j.clock(), 42u);
    EXPECT_EQ(j.dumpPath(), "/tmp/never-written.jsonl");
}

TEST(Journal, JsonlEveryLineParsesAndHeaderIsHonest)
{
    Journal j(4);
    for (int64_t i = 0; i < 6; ++i) {
        j.setClock(static_cast<uint64_t>(10 * i));
        j.record(JournalKind::Migration, JournalCause::Threshold, i,
                 i + 1, i, 12, 3);
    }
    const auto ls = lines(j.renderJsonl());
    ASSERT_EQ(ls.size(), 5u); // header + 4 retained events
    for (const auto &l : ls)
        EXPECT_TRUE(jsonParseOk(l)) << l;
    EXPECT_NE(ls[0].find("\"journal\":\"xmig-lens\""), std::string::npos);
    EXPECT_NE(ls[0].find("\"capacity\":4"), std::string::npos);
    EXPECT_NE(ls[0].find("\"recorded\":6"), std::string::npos);
    EXPECT_NE(ls[0].find("\"dropped\":2"), std::string::npos);
    // Events carry kind/cause names and the per-kind arg names.
    EXPECT_NE(ls[1].find("\"kind\":\"migration\""), std::string::npos);
    EXPECT_NE(ls[1].find("\"cause\":\"threshold\""), std::string::npos);
    EXPECT_NE(ls[1].find("\"from\":"), std::string::npos);
    EXPECT_NE(ls[1].find("\"to\":"), std::string::npos);
}

TEST(Journal, KindAndCauseTablesAreTotal)
{
    for (size_t k = 0; k < static_cast<size_t>(JournalKind::kCount); ++k) {
        const auto kind = static_cast<JournalKind>(k);
        EXPECT_STRNE(journalKindName(kind), "?") << k;
        EXPECT_NE(journalArgNames(kind), nullptr) << k;
    }
    for (size_t c = 0; c < static_cast<size_t>(JournalCause::kCount); ++c)
        EXPECT_STRNE(journalCauseName(static_cast<JournalCause>(c)), "?")
            << c;
}

TEST(Journal, WriteJsonlRoundTripsThroughDisk)
{
    Journal j(8);
    j.record(JournalKind::CoreOff, JournalCause::FaultForced, 1, 5);
    const std::string path =
        testing::TempDir() + "xmig_journal_roundtrip.jsonl";
    ASSERT_TRUE(j.writeJsonl(path));
    EXPECT_EQ(slurp(path), j.renderJsonl());
    std::remove(path.c_str());
}

TEST(Journal, DumpNowAppendsIncidentLine)
{
    Journal j(8);
    j.record(JournalKind::WatchdogTrip, JournalCause::Livelock, 9, 4);
    // No dump path armed: dumpNow refuses.
    EXPECT_FALSE(j.dumpNow("livelock"));
    const std::string path = testing::TempDir() + "xmig_journal_incident.jsonl";
    j.setDumpPath(path);
    ASSERT_TRUE(j.dumpNow("livelock"));
    const auto ls = lines(slurp(path));
    ASSERT_GE(ls.size(), 3u); // header + event + incident
    for (const auto &l : ls)
        EXPECT_TRUE(jsonParseOk(l)) << l;
    EXPECT_NE(ls.back().find("\"incident\":\"livelock\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(JournalMacros, NullPointerIsSafeAndFree)
{
    Journal *none = nullptr;
    // None of these may crash, and with a null journal the argument
    // expressions must not be evaluated.
    int evaluated = 0;
    XMIG_JOURNAL(none, JournalKind::Migration, JournalCause::Threshold,
                 (++evaluated, 0));
    XMIG_JOURNAL_CLOCK(none, (++evaluated, 1));
    XMIG_JOURNAL_INCIDENT(none, "nope");
    if (kJournalCompiled) {
        EXPECT_EQ(evaluated, 0);
    }
}

TEST(JournalMacros, RecordThroughMacroWhenAttached)
{
    Journal j(4);
    Journal *ptr = &j;
    XMIG_JOURNAL_CLOCK(ptr, 77);
    XMIG_JOURNAL(ptr, JournalKind::Resplit, JournalCause::FaultForced,
                 2, 0b1011, 123);
    if (!kJournalCompiled) {
        EXPECT_EQ(j.size(), 0u);
        return;
    }
    ASSERT_EQ(j.size(), 1u);
    EXPECT_EQ(j.eventAt(0).time, 77u);
    EXPECT_EQ(j.eventAt(0).kind, JournalKind::Resplit);
    EXPECT_EQ(j.eventAt(0).arg[0], 2);
}

} // namespace
} // namespace xmig::obs
