/**
 * @file
 * Unit tests for the migration controller (section 3).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/migration_controller.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

MigrationControllerConfig
baseConfig(unsigned cores)
{
    MigrationControllerConfig c;
    c.numCores = cores;
    c.windowX = 64;
    c.windowY = 32;
    c.filterBits = 18;
    return c;
}

TEST(MigrationController, StartsOnCoreZero)
{
    MigrationController ctrl(baseConfig(4));
    EXPECT_EQ(ctrl.activeCore(), 0u);
    EXPECT_EQ(ctrl.subset(), 0u);
}

TEST(MigrationController, TargetsStayInRange)
{
    for (unsigned cores : {2u, 4u}) {
        MigrationController ctrl(baseConfig(cores));
        UniformRandomStream s(2000);
        for (int t = 0; t < 100'000; ++t) {
            const unsigned target = ctrl.onRequest(s.next());
            ASSERT_LT(target, cores);
            ASSERT_EQ(target, ctrl.activeCore());
        }
    }
}

TEST(MigrationController, MigrationsMatchSubsetChanges)
{
    MigrationController ctrl(baseConfig(4));
    UniformRandomStream s(2000);
    unsigned prev = ctrl.activeCore();
    uint64_t changes = 0;
    for (int t = 0; t < 100'000; ++t) {
        const unsigned target = ctrl.onRequest(s.next());
        if (target != prev)
            ++changes;
        prev = target;
    }
    EXPECT_EQ(ctrl.stats().migrations, changes);
    EXPECT_EQ(ctrl.stats().requests, 100'000u);
}

TEST(MigrationController, FourCoresAllUsedOnCircular)
{
    MigrationControllerConfig c = baseConfig(4);
    c.windowX = 128;
    c.windowY = 64;
    MigrationController ctrl(c);
    CircularStream s(4000);
    for (int t = 0; t < 2'000'000; ++t)
        ctrl.onRequest(s.next());
    std::set<unsigned> used;
    for (int t = 0; t < 8000; ++t)
        used.insert(ctrl.onRequest(s.next()));
    EXPECT_EQ(used.size(), 4u);
}

TEST(MigrationController, L2FilteringBlocksMigrations)
{
    MigrationControllerConfig c = baseConfig(4);
    c.l2Filtering = true;
    MigrationController ctrl(c);
    UniformRandomStream s(2000);
    // All requests hit L2: filters never update, no migrations.
    for (int t = 0; t < 100'000; ++t)
        ctrl.onRequest(s.next(), /*l2_miss=*/false);
    EXPECT_EQ(ctrl.stats().migrations, 0u);
    EXPECT_EQ(ctrl.stats().filterUpdates, 0u);
}

TEST(MigrationController, L2FilteringAllowsMigrationsOnMisses)
{
    MigrationControllerConfig c = baseConfig(4);
    c.l2Filtering = true;
    MigrationController ctrl(c);
    UniformRandomStream s(2000);
    for (int t = 0; t < 100'000; ++t)
        ctrl.onRequest(s.next(), /*l2_miss=*/true);
    EXPECT_GT(ctrl.stats().migrations, 0u);
}

TEST(MigrationController, BoundedStoreSuppressesHugeWorkingSets)
{
    // Section 4.2: with a finite affinity cache, a working-set far
    // larger than the cache sees mostly misses, each forcing
    // A_e = 0, so the filter barely moves and migrations are rare.
    MigrationControllerConfig c = baseConfig(4);
    c.l2Filtering = false;
    c.boundedStore = true;
    c.affinityCache.entries = 1024;
    c.affinityCache.ways = 4;
    MigrationController bounded(c);

    MigrationControllerConfig u = c;
    u.boundedStore = false;
    MigrationController unbounded(u);

    CircularStream s1(200'000), s2(200'000); // 100k+ sampled lines
    for (int t = 0; t < 1'500'000; ++t) {
        bounded.onRequest(s1.next());
        unbounded.onRequest(s2.next());
    }
    EXPECT_LT(bounded.stats().migrations,
              unbounded.stats().migrations / 2 + 10);
}

TEST(MigrationController, TwoCoreConfigSplitsCircular)
{
    MigrationControllerConfig c = baseConfig(2);
    c.windowX = 100;
    MigrationController ctrl(c);
    CircularStream s(4000);
    for (int t = 0; t < 1'000'000; ++t)
        ctrl.onRequest(s.next());
    std::set<unsigned> used;
    for (int t = 0; t < 4000; ++t)
        used.insert(ctrl.onRequest(s.next()));
    EXPECT_EQ(used.size(), 2u);
}

TEST(MigrationController, RejectsBadCoreCount)
{
    MigrationControllerConfig c = baseConfig(4);
    c.numCores = 3;
    EXPECT_DEATH({ MigrationController ctrl(c); }, "power-of-two");
}

TEST(MigrationController, EightCoreSplitterUsesAllCores)
{
    MigrationControllerConfig c = baseConfig(8);
    c.numCores = 8;
    c.windowX = 128;
    MigrationController ctrl(c);
    CircularStream s(8000);
    for (int t = 0; t < 4'000'000; ++t)
        ctrl.onRequest(s.next());
    std::set<unsigned> used;
    for (int t = 0; t < 16000; ++t)
        used.insert(ctrl.onRequest(s.next()));
    // The recursive splitter should activate most of the 8 subsets.
    EXPECT_GE(used.size(), 6u);
    for (unsigned core : used)
        EXPECT_LT(core, 8u);
}

TEST(MigrationController, AffinityOfReportsTrackedLines)
{
    MigrationController ctrl(baseConfig(4));
    ctrl.onRequest(31); // H(31)=0: even, goes to a Y engine
    ctrl.onRequest(1);  // H(1)=1: odd, goes to X
    // affinityOf consults engine X and the shared store.
    EXPECT_TRUE(ctrl.affinityOf(1).has_value());
}

} // namespace
} // namespace xmig
