/**
 * @file
 * xmig-arena: multi-tenant machine + tenant scheduler tests.
 *
 * The centerpiece is the golden-row regression for Figure 1's
 * crossover, pinned at the same configuration bench_figure1 sweeps:
 * migration mode must win the cache-hungry pairs (time-sharing the
 * aggregate L2 removes their misses) and throughput mode must win the
 * cache-light quads (4-way parallelism with nothing to fight over).
 * Around it: LFOC-style way-clustering fairness, run-to-run
 * determinism of the whole arena (producer threads and all), the
 * makespan arithmetic of both modes, and unit coverage of the
 * scheduler's admission / rotation / deficit mechanics.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "multicore/arena.hpp"
#include "multicore/tenant_sched.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"

namespace xmig {
namespace {

TenantProbe
probeWithMpki(double mpki)
{
    TenantProbe p;
    p.instructions = 1'000'000;
    p.refs = 300'000;
    p.l2Misses = static_cast<uint64_t>(mpki * 1000.0);
    p.soloCycles = 1'000'000.0;
    return p;
}

/** The bench_figure1 cell configuration, pinned for golden rows. */
ArenaConfig
figureConfig(ArenaMode mode, L3Policy policy,
             const std::vector<const char *> &benches, uint64_t instr)
{
    ArenaConfig cfg;
    cfg.mode = mode;
    cfg.l3Policy = policy;
    for (const char *bench : benches)
        cfg.tenants.push_back({bench, instr, 42});
    cfg.sharedL3Bytes = 512 * 1024;
    cfg.sched.maxResident = 4;
    cfg.sched.quantumRefs =
        mode == ArenaMode::Migration ? 1'048'576 : 4096;
    cfg.probeInstructions = std::max<uint64_t>(100'000, instr / 10);
    return cfg;
}

double
makespanOf(ArenaMode mode, L3Policy policy,
           const std::vector<const char *> &benches, uint64_t instr)
{
    TenantArena arena(figureConfig(mode, policy, benches, instr));
    return arena.run().makespanCycles;
}

// ---------------------------------------------------------------
// Golden rows: the Figure 1 crossover.
// ---------------------------------------------------------------

TEST(ArenaCrossover, MigrationWinsCacheHungryPairs)
{
    // Table 2's biggest migration winners: their working sets fit
    // the 2-MB aggregate L2 but thrash a shared 512-KB L3.
    const uint64_t instr = 2'000'000;
    for (const std::vector<const char *> &pair :
         {std::vector<const char *>{"188.ammp", "179.art"},
          std::vector<const char *>{"em3d", "health"}}) {
        const double mig = makespanOf(
            ArenaMode::Migration, L3Policy::Unpartitioned, pair,
            instr);
        const double thr = makespanOf(
            ArenaMode::Throughput, L3Policy::Unpartitioned, pair,
            instr);
        EXPECT_LT(mig, thr)
            << pair[0] << "+" << pair[1]
            << ": migration should win the cache-hungry pair";
    }
}

TEST(ArenaCrossover, ThroughputWinsCacheLightQuad)
{
    // Four small-footprint programs: nothing to fight over, so
    // 4-way space-sharing beats serial time-sharing by roughly the
    // parallelism factor.
    const std::vector<const char *> quad = {"bisort", "mst",
                                            "300.twolf",
                                            "255.vortex"};
    const double mig = makespanOf(ArenaMode::Migration,
                                  L3Policy::Unpartitioned, quad,
                                  1'000'000);
    const double thr = makespanOf(ArenaMode::Throughput,
                                  L3Policy::Unpartitioned, quad,
                                  1'000'000);
    EXPECT_LT(thr, mig)
        << "throughput should win the cache-light quad";
}

TEST(ArenaCrossover, WayClusteringImprovesFairnessOnContendingMix)
{
    // em3d (hungry) + health (hungrier): unpartitioned, the heavier
    // stream starves the lighter one; LFOC-style clusters protect
    // each tenant's share. Both fairness metrics must agree.
    auto fairness = [](L3Policy policy) {
        TenantArena arena(figureConfig(ArenaMode::Throughput, policy,
                                       {"em3d", "health"},
                                       2'000'000));
        return arena.run();
    };
    const ArenaResult open = fairness(L3Policy::Unpartitioned);
    const ArenaResult fenced = fairness(L3Policy::WayClustered);
    EXPECT_LT(fenced.unfairness, open.unfairness);
    EXPECT_GT(fenced.jainFairness, open.jainFairness);
}

// ---------------------------------------------------------------
// Determinism and makespan arithmetic.
// ---------------------------------------------------------------

TEST(Arena, RerunIsBitwiseDeterministic)
{
    // Producer threads feed the queues in wall-clock order, but the
    // consumer's arbitration is a pure function of the schedule, so
    // two runs must agree to the last bit and the last miss.
    auto runOnce = [] {
        TenantArena arena(figureConfig(ArenaMode::Throughput,
                                       L3Policy::WayClustered,
                                       {"em3d", "health"}, 200'000));
        return arena.run();
    };
    const ArenaResult a = runOnce();
    const ArenaResult b = runOnce();
    EXPECT_EQ(a.makespanCycles, b.makespanCycles);
    EXPECT_EQ(a.sharedL3Accesses, b.sharedL3Accesses);
    EXPECT_EQ(a.sharedL3Misses, b.sharedL3Misses);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t i = 0; i < a.tenants.size(); ++i) {
        EXPECT_EQ(a.tenants[i].refs, b.tenants[i].refs);
        EXPECT_EQ(a.tenants[i].cycles, b.tenants[i].cycles);
        EXPECT_EQ(a.tenants[i].turns, b.tenants[i].turns);
        EXPECT_EQ(a.tenants[i].p99TurnCycles,
                  b.tenants[i].p99TurnCycles);
    }
}

TEST(Arena, MigrationMakespanIsSumOfTenantCycles)
{
    TenantArena arena(figureConfig(ArenaMode::Migration,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort"}, 200'000));
    const ArenaResult r = arena.run();
    double sum = 0;
    for (const TenantResult &t : r.tenants)
        sum += t.cycles;
    EXPECT_NEAR(r.makespanCycles, sum, 1e-6 * sum)
        << "time-sharing: makespan = sum of turns";
}

TEST(Arena, ThroughputMakespanIsMaxOfTenantCycles)
{
    TenantArena arena(figureConfig(ArenaMode::Throughput,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort"}, 200'000));
    const ArenaResult r = arena.run();
    double peak = 0;
    for (const TenantResult &t : r.tenants)
        peak = std::max(peak, t.cycles);
    EXPECT_NEAR(r.makespanCycles, peak, 1e-6 * peak)
        << "space-sharing: makespan = slowest resident";
}

TEST(Arena, AdmissionBeyondResidentLimitCompletesEveryTenant)
{
    ArenaConfig cfg = figureConfig(ArenaMode::Throughput,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort", "em3d"},
                                   150'000);
    cfg.sched.maxResident = 2;
    TenantArena arena(cfg);
    const ArenaResult r = arena.run();
    ASSERT_EQ(r.tenants.size(), 3u);
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.turns, 0u) << t.benchmark;
        EXPECT_GT(t.refs, 0u) << t.benchmark;
        // Completion = start + cycles; a tenant admitted late still
        // finishes inside the makespan.
        EXPECT_LE(t.cycles, r.makespanCycles * (1 + 1e-9))
            << t.benchmark;
    }
}

// ---------------------------------------------------------------
// Observability contracts.
// ---------------------------------------------------------------

TEST(Arena, ResultCarriesOrderedTurnPercentiles)
{
    TenantArena arena(figureConfig(ArenaMode::Throughput,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort"}, 200'000));
    const ArenaResult r = arena.run();
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.p50TurnCycles, 0.0) << t.benchmark;
        EXPECT_LE(t.p50TurnCycles, t.p95TurnCycles) << t.benchmark;
        EXPECT_LE(t.p95TurnCycles, t.p99TurnCycles) << t.benchmark;
        EXPECT_GT(t.clusterWays, 0u) << t.benchmark;
        EXPECT_GT(t.slowdown, 0.0) << t.benchmark;
    }
}

TEST(Arena, MetricsRegistryExportsTenantsAndClusters)
{
    TenantArena arena(figureConfig(ArenaMode::Throughput,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort"}, 150'000));
    arena.run();
    obs::MetricsRegistry registry;
    arena.registerMetrics(registry, "arena");
    const std::string jsonl = registry.renderJsonl();
    EXPECT_NE(jsonl.find("arena.tenant0."), std::string::npos);
    EXPECT_NE(jsonl.find("arena.tenant1."), std::string::npos);
    EXPECT_NE(jsonl.find("arena.tenant0.turn_cycles"),
              std::string::npos);
    EXPECT_NE(jsonl.find("arena.l3.cluster0."), std::string::npos);
    // The per-tenant turn histogram is what carries p50/p95/p99 into
    // the export (the acceptance contract for latency percentiles).
    EXPECT_NE(jsonl.find("\"p99\""), std::string::npos);
}

TEST(Arena, JournalRecordsTenantLifecycle)
{
    if (!obs::kJournalCompiled)
        GTEST_SKIP() << "journal compiled out (-DXMIG_JOURNAL=OFF)";
    obs::Journal journal;
    TenantArena arena(figureConfig(ArenaMode::Throughput,
                                   L3Policy::Unpartitioned,
                                   {"mst", "bisort"}, 150'000));
    arena.attachJournal(&journal);
    arena.run();
    const std::string jsonl = journal.renderJsonl();
    EXPECT_NE(jsonl.find("tenant_admit"), std::string::npos);
    EXPECT_NE(jsonl.find("tenant_turn"), std::string::npos);
    EXPECT_NE(jsonl.find("tenant_finish"), std::string::npos);
    EXPECT_NE(jsonl.find("tenant_partition"), std::string::npos);
    EXPECT_NE(jsonl.find("\"cause\":\"tenant\""), std::string::npos);
}

// ---------------------------------------------------------------
// Scheduler unit mechanics.
// ---------------------------------------------------------------

TEST(TenantScheduler, ColocationOrderInterleavesHeavyAndLight)
{
    // mpki per tenant: 0→5, 1→50, 2→1, 3→20. Sorted heavy-first:
    // 1, 3, 0, 2; the interleave alternates ends: 1, 2, 3, 0.
    const std::vector<TenantProbe> probes = {
        probeWithMpki(5), probeWithMpki(50), probeWithMpki(1),
        probeWithMpki(20)};
    TenantSchedConfig cfg;
    cfg.maxResident = 4;
    TenantScheduler sched(cfg, probes);
    EXPECT_EQ(sched.admitNext(), 1u);
    EXPECT_EQ(sched.admitNext(), 2u);
    EXPECT_EQ(sched.admitNext(), 3u);
    EXPECT_EQ(sched.admitNext(), 0u);
    EXPECT_EQ(sched.admitNext(), TenantScheduler::kNone);
    EXPECT_EQ(sched.colocationScore(1), 50.0);
}

TEST(TenantScheduler, AdmissionHonorsResidentLimit)
{
    const std::vector<TenantProbe> probes = {
        probeWithMpki(1), probeWithMpki(2), probeWithMpki(3)};
    TenantSchedConfig cfg;
    cfg.maxResident = 2;
    TenantScheduler sched(cfg, probes);
    EXPECT_NE(sched.admitNext(), TenantScheduler::kNone);
    EXPECT_NE(sched.admitNext(), TenantScheduler::kNone);
    EXPECT_EQ(sched.admitNext(), TenantScheduler::kNone)
        << "both slots taken";
    EXPECT_EQ(sched.residentCount(), 2u);
    EXPECT_EQ(sched.waitingCount(), 1u);
    EXPECT_FALSE(sched.allFinished());
}

TEST(TenantScheduler, RotationSkipsFinishedTenantCleanly)
{
    const std::vector<TenantProbe> probes = {
        probeWithMpki(3), probeWithMpki(2), probeWithMpki(1)};
    TenantSchedConfig cfg;
    cfg.maxResident = 3;
    TenantScheduler sched(cfg, probes);
    // Heavy-first interleave on 3,2,1: order 0, 2, 1.
    EXPECT_EQ(sched.admitNext(), 0u);
    EXPECT_EQ(sched.admitNext(), 2u);
    EXPECT_EQ(sched.admitNext(), 1u);
    EXPECT_EQ(sched.nextTurn(), 0u);
    EXPECT_EQ(sched.nextTurn(), 2u);
    // Retiring a tenant behind the cursor keeps the rotation aimed
    // at the same successor.
    sched.onFinish(2);
    EXPECT_EQ(sched.nextTurn(), 1u);
    EXPECT_EQ(sched.nextTurn(), 0u);
    sched.onFinish(0);
    sched.onFinish(1);
    EXPECT_TRUE(sched.allFinished());
    EXPECT_EQ(sched.nextTurn(), TenantScheduler::kNone);
}

TEST(TenantScheduler, DeficitRoundRobinGrantsWeightedBudgets)
{
    const std::vector<TenantProbe> probes = {probeWithMpki(2),
                                             probeWithMpki(2)};
    TenantSchedConfig cfg;
    cfg.policy = SchedPolicy::DeficitRoundRobin;
    cfg.quantumRefs = 100;
    cfg.weights = {1, 3};
    TenantScheduler sched(cfg, probes);
    ASSERT_NE(sched.admitNext(), TenantScheduler::kNone);
    ASSERT_NE(sched.admitNext(), TenantScheduler::kNone);
    EXPECT_EQ(sched.nextTurn(), 0u);
    EXPECT_EQ(sched.turnBudget(0), 100u);
    EXPECT_EQ(sched.nextTurn(), 1u);
    EXPECT_EQ(sched.turnBudget(1), 300u) << "weight 3 → 3 quanta";
    // Unused budget carries over as deficit.
    sched.onTurnEnd(0, 40);
    EXPECT_EQ(sched.nextTurn(), 0u);
    EXPECT_EQ(sched.turnBudget(0), 160u) << "60 leftover + 100 fresh";
    // Overdraw clamps to zero rather than underflowing.
    sched.onTurnEnd(0, 1'000'000);
    EXPECT_EQ(sched.nextTurn(), 1u);
    sched.onTurnEnd(1, 300);
    EXPECT_EQ(sched.nextTurn(), 0u);
    EXPECT_EQ(sched.turnBudget(0), 100u);
}

// ---------------------------------------------------------------
// Appetite classification and way clustering.
// ---------------------------------------------------------------

TEST(Clustering, AppetiteThresholdsAreInclusive)
{
    EXPECT_EQ(classifyAppetite(probeWithMpki(0.5), 1.0, 30.0),
              CacheAppetite::Light);
    EXPECT_EQ(classifyAppetite(probeWithMpki(1.0), 1.0, 30.0),
              CacheAppetite::Light);
    EXPECT_EQ(classifyAppetite(probeWithMpki(15.0), 1.0, 30.0),
              CacheAppetite::Sensitive);
    EXPECT_EQ(classifyAppetite(probeWithMpki(30.0), 1.0, 30.0),
              CacheAppetite::Thrashing);
    TenantProbe idle;
    EXPECT_EQ(idle.missesPerKiloInstr(), 0.0)
        << "zero instructions must not divide by zero";
}

TEST(Clustering, SingleClassPopulationDegeneratesToUnpartitioned)
{
    const std::vector<TenantProbe> allLight = {
        probeWithMpki(0.1), probeWithMpki(0.2), probeWithMpki(0.3)};
    const std::vector<ClusterSpec> clusters =
        clusterTenants(allLight, 16);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].ways, 16u);
    EXPECT_EQ(clusters[0].tenants,
              (std::vector<unsigned>{0, 1, 2}));
}

TEST(Clustering, MixedClassesJailThrashersAndProtectSensitive)
{
    // t0 thrashes (50), t1 is light (0.5), t2/t3 are sensitive
    // (10 and 5): jail 2 ways, light 2 ways, the remaining 12 split
    // 8/4 proportionally to appetite.
    const std::vector<TenantProbe> probes = {
        probeWithMpki(50), probeWithMpki(0.5), probeWithMpki(10),
        probeWithMpki(5)};
    const std::vector<ClusterSpec> clusters =
        clusterTenants(probes, 16);
    ASSERT_EQ(clusters.size(), 4u);
    EXPECT_EQ(clusters[0].ways, 2u);
    EXPECT_EQ(clusters[0].tenants, (std::vector<unsigned>{0}));
    EXPECT_EQ(clusters[1].ways, 2u);
    EXPECT_EQ(clusters[1].tenants, (std::vector<unsigned>{1}));
    EXPECT_EQ(clusters[2].ways, 8u);
    EXPECT_EQ(clusters[2].tenants, (std::vector<unsigned>{2}));
    EXPECT_EQ(clusters[3].ways, 4u);
    EXPECT_EQ(clusters[3].tenants, (std::vector<unsigned>{3}));
    unsigned total = 0;
    size_t covered = 0;
    for (const ClusterSpec &c : clusters) {
        total += c.ways;
        covered += c.tenants.size();
    }
    EXPECT_EQ(total, 16u);
    EXPECT_EQ(covered, probes.size());
}

TEST(Clustering, SingleWayCacheCannotBePartitioned)
{
    const std::vector<TenantProbe> probes = {probeWithMpki(50),
                                             probeWithMpki(0.5)};
    const std::vector<ClusterSpec> clusters =
        clusterTenants(probes, 1);
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].ways, 1u);
    EXPECT_EQ(clusters[0].tenants, (std::vector<unsigned>{0, 1}));
}

// ---------------------------------------------------------------
// Fairness metrics.
// ---------------------------------------------------------------

TEST(Fairness, UnfairnessIsMaxOverMin)
{
    EXPECT_EQ(unfairness({}), 1.0);
    EXPECT_EQ(unfairness({2.0, 2.0}), 1.0);
    EXPECT_EQ(unfairness({1.0, 3.0}), 3.0);
    EXPECT_EQ(unfairness({0.0, -1.0, 2.0, 4.0}), 2.0)
        << "non-positive slowdowns are ignored";
}

TEST(Fairness, JainIndexMatchesClosedForm)
{
    EXPECT_EQ(jainFairnessIndex({}), 1.0);
    EXPECT_EQ(jainFairnessIndex({2.0, 2.0, 2.0}), 1.0);
    // rates 1 and 1/3: (4/3)^2 / (2 * 10/9) = 0.8.
    EXPECT_NEAR(jainFairnessIndex({1.0, 3.0}), 0.8, 1e-12);
}

} // namespace
} // namespace xmig
