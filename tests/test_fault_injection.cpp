/**
 * @file
 * xmig-iron unit tests: fault injector mechanics, soft-error hooks in
 * the affinity engine, update-bus loss in the machine, the watchdog,
 * and determinism parity when no fault can fire.
 */

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/shadow_audit.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "mem/ref.hpp"
#include "multicore/machine.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

FaultPlan
plan(const std::string &spec)
{
    return FaultPlan::parseOrFatal(spec);
}

/** Feed `refs` L1-filtered-looking references into a machine. */
void
feedMachine(MigrationMachine &machine, uint64_t refs, uint64_t lines,
            uint64_t seed)
{
    Rng rng(seed);
    CircularStream stream(lines);
    for (uint64_t i = 0; i < refs; ++i) {
        const uint64_t addr = stream.next() * 64;
        machine.access(MemRef::ifetch(0x400000 + (i % 4096) * 4));
        if (rng.below(4) == 0)
            machine.access(MemRef::store(addr));
        else
            machine.access(MemRef::load(addr));
    }
}

TEST(FaultInjector, ScheduledFlipFiresExactlyOnce)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    FaultInjector fi(plan("at=3:flip=ae"));
    EXPECT_TRUE(fi.armedFor(FaultSite::Ae));
    EXPECT_FALSE(fi.armedFor(FaultSite::Delta));
    EXPECT_FALSE(fi.draw(FaultSite::Ae)); // not due yet
    fi.tick(); // now=0
    fi.tick(); // now=1
    fi.tick(); // now=2
    EXPECT_FALSE(fi.draw(FaultSite::Ae));
    fi.tick(); // now=3: the at=3 rule latches
    EXPECT_TRUE(fi.draw(FaultSite::Ae));
    EXPECT_FALSE(fi.draw(FaultSite::Ae)); // consumed
    for (int i = 0; i < 100; ++i) {
        fi.tick();
        EXPECT_FALSE(fi.draw(FaultSite::Ae));
    }
    EXPECT_EQ(fi.stats().of(FaultSite::Ae), 1u);
}

TEST(FaultInjector, RateRuleIsSeededAndReplayable)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    const FaultPlan p = plan("seed=11;rate=0.01:mig_drop");
    FaultInjector a(p), b(p);
    uint64_t fired = 0;
    for (int i = 0; i < 50'000; ++i) {
        a.tick();
        b.tick();
        const bool fa = a.draw(FaultSite::MigDrop);
        const bool fb = b.draw(FaultSite::MigDrop);
        ASSERT_EQ(fa, fb) << "diverged at opportunity " << i;
        fired += fa;
    }
    // ~500 expected; generous bounds, but definitely nonzero.
    EXPECT_GT(fired, 300u);
    EXPECT_LT(fired, 900u);
    // A different seed draws a different sequence.
    FaultInjector c(plan("seed=12;rate=0.01:mig_drop"));
    uint64_t diverged = 0;
    FaultInjector a2(p);
    for (int i = 0; i < 50'000; ++i) {
        c.tick();
        a2.tick();
        diverged += c.draw(FaultSite::MigDrop) !=
                    a2.draw(FaultSite::MigDrop);
    }
    EXPECT_GT(diverged, 0u);
}

TEST(FaultInjector, FlipBitFlipsExactlyOneBitInWidth)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    FaultInjector fi(plan("seed=4;rate=1:flip=ae"));
    for (unsigned bits : {8u, 16u, 17u, 32u}) {
        for (int trial = 0; trial < 200; ++trial) {
            const int64_t value = (trial % 2) ? -trial * 3 : trial * 7;
            const int64_t flipped = fi.flipBit(value, bits);
            EXPECT_NE(flipped, value);
            const uint64_t mask = (uint64_t{1} << bits) - 1;
            const uint64_t diff =
                (static_cast<uint64_t>(flipped) ^
                 static_cast<uint64_t>(value)) & mask;
            // Exactly one bit inside the width differs...
            EXPECT_EQ(diff & (diff - 1), 0u);
            EXPECT_NE(diff, 0u);
            // ...and the result is properly sign-extended.
            const int64_t top = int64_t{1} << (bits - 1);
            EXPECT_GE(flipped, -top);
            EXPECT_LT(flipped, top);
        }
    }
}

TEST(FaultInjector, CoreEventsDrainInFiringOrder)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    FaultInjector fi(plan("at=5:core_on=1;at=2:core_off=1"));
    EXPECT_TRUE(fi.armedForCoreEvents());
    std::vector<CoreFaultEvent> events;
    for (int t = 1; t <= 6; ++t)
        fi.tick();
    ASSERT_TRUE(fi.coreEventsPending());
    fi.drainCoreEvents(events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].core, 1u);
    EXPECT_FALSE(events[0].online); // the at=2 unplug first
    EXPECT_TRUE(events[1].online);
    EXPECT_FALSE(fi.coreEventsPending());
}

TEST(FaultInjector, MigrationDelayIsReported)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    FaultInjector fi(plan("rate=1:mig_delay=17"));
    fi.tick();
    ASSERT_TRUE(fi.draw(FaultSite::MigDelay));
    EXPECT_EQ(fi.migrationDelay(), 17u);
}

TEST(EngineFaults, SoftErrorsLandAndDisarmTheShadow)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    FaultInjector fi(plan("seed=2;rate=0.001:flip=delta;"
                          "rate=0.001:flip=ar"));
    EngineConfig ec;
    ec.windowSize = 64;
    ec.shadow = ShadowMode::Armed;
    ec.faults = &fi;
    UnboundedOeStore store(ec.affinityBits);
    AffinityEngine engine(ec, store);
    CircularStream stream(2000);
    for (int i = 0; i < 20'000; ++i) {
        fi.tick();
        engine.reference(stream.next());
    }
    EXPECT_GT(fi.stats().of(FaultSite::Delta), 0u);
    EXPECT_GT(fi.stats().of(FaultSite::Ar), 0u);
    // The oracle must have stood down instead of panicking: injected
    // corruption is not a model divergence.
    ASSERT_NE(engine.shadow(), nullptr);
    EXPECT_FALSE(engine.shadow()->armed());
}

TEST(MachineFaults, BusDropsAreCountedAndScrubbed)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.faultPlan = "seed=5;rate=0.02:bus_drop";
    MigrationMachine machine(cfg);
    feedMachine(machine, 400'000, 20'000, 77);
    EXPECT_GT(machine.stats().busDrops, 0u);
    ASSERT_NE(machine.injector(), nullptr);
    EXPECT_EQ(machine.injector()->stats().of(FaultSite::BusDrop),
              machine.stats().busDrops);
    // The periodic scrubber bounds the damage: stale modified bits
    // exist transiently but repairs must have happened.
    if (machine.stats().migrations > 0)
        EXPECT_GT(machine.stats().coherenceRepairs, 0u);
}

TEST(MachineFaults, SingleCoreIgnoresThePlan)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig cfg;
    cfg.numCores = 1;
    cfg.faultPlan = "rate=0.1:bus_drop";
    MigrationMachine machine(cfg); // warns, does not die
    EXPECT_EQ(machine.injector(), nullptr);
    feedMachine(machine, 10'000, 2000, 1);
    EXPECT_EQ(machine.stats().busDrops, 0u);
}

TEST(MachineFaults, InertAndZeroRatePlansPreserveDeterminism)
{
    if (!kFaultEnabled)
        GTEST_SKIP() << "fault hooks compiled out";
    MachineConfig clean;
    clean.numCores = 4;
    MigrationMachine a(clean);

    MachineConfig seeded = clean;
    seeded.faultPlan = "seed=3"; // armed injector, no rules
    MigrationMachine b(seeded);

    MachineConfig zeroed = clean;
    zeroed.faultPlan = "rate=0:mig_drop;rate=0:bus_drop;rate=0:flip=ae";
    MigrationMachine c(zeroed);

    feedMachine(a, 200'000, 20'000, 9);
    feedMachine(b, 200'000, 20'000, 9);
    feedMachine(c, 200'000, 20'000, 9);

    // No fault can ever fire, so all three runs must agree exactly.
    for (const MigrationMachine *m : {&b, &c}) {
        EXPECT_EQ(m->stats().l2Misses, a.stats().l2Misses);
        EXPECT_EQ(m->stats().migrations, a.stats().migrations);
        EXPECT_EQ(m->stats().l2ToL2Forwards,
                  a.stats().l2ToL2Forwards);
        EXPECT_EQ(m->stats().updateBusStores,
                  a.stats().updateBusStores);
        EXPECT_EQ(m->activeCore(), a.activeCore());
    }
    EXPECT_EQ(c.stats().busDrops, 0u);
}

TEST(Watchdog, DisabledWatchdogVetoesNothing)
{
    Watchdog wd(WatchdogConfig{});
    EXPECT_FALSE(wd.enabled());
    for (uint64_t now = 1; now <= 1000; ++now) {
        wd.onRequest(now, true);
        EXPECT_TRUE(wd.migrationAllowed(now));
        wd.onMigration(now);
    }
    EXPECT_EQ(wd.stats().livelocks, 0u);
    EXPECT_FALSE(wd.takeReinit());
}

TEST(Watchdog, PingPongTripsAndSuppresses)
{
    WatchdogConfig cfg;
    cfg.enabled = true;
    cfg.pingPongWindow = 100;
    cfg.pingPongLimit = 4;
    cfg.cooldownBase = 50;
    cfg.cooldownCap = 400;
    Watchdog wd(cfg);
    uint64_t completed = 0, suppressed = 0;
    for (uint64_t now = 1; now <= 2000; ++now) {
        wd.onRequest(now, false);
        if (wd.migrationAllowed(now)) {
            wd.onMigration(now); // pathological: migrate every time
            ++completed;
        } else {
            ++suppressed;
        }
    }
    EXPECT_GT(wd.stats().livelocks, 0u);
    EXPECT_GT(suppressed, 0u);
    EXPECT_EQ(wd.stats().suppressed, suppressed);
    // The cooldown bounds the migration frequency: out of 2000
    // pathological requests, the vast majority must be vetoed.
    EXPECT_LT(completed, 500u);
}

TEST(Watchdog, RepeatedTripsDoubleTheCooldownUpToTheCap)
{
    WatchdogConfig cfg;
    cfg.enabled = true;
    cfg.pingPongWindow = 16;
    cfg.pingPongLimit = 2;
    cfg.cooldownBase = 32;
    cfg.cooldownCap = 128;
    cfg.decayAfter = 1'000'000; // no decay during the test
    Watchdog wd(cfg);
    uint64_t peak = 0;
    for (uint64_t now = 1; now <= 5000; ++now) {
        wd.onRequest(now, false);
        if (wd.migrationAllowed(now))
            wd.onMigration(now);
        peak = std::max(peak, wd.stats().cooldownNow);
    }
    EXPECT_GT(wd.stats().livelocks, 1u);
    EXPECT_EQ(peak, 128u); // reached, never exceeded, the cap
}

TEST(Watchdog, DegenerateSplitRequestsOneReinit)
{
    WatchdogConfig cfg;
    cfg.enabled = true;
    cfg.stuckWindow = 100;
    Watchdog wd(cfg);
    for (uint64_t now = 1; now <= 99; ++now)
        wd.onRequest(now, true);
    EXPECT_FALSE(wd.takeReinit()); // not stuck long enough yet
    // One unsaturated request resets the run.
    wd.onRequest(100, false);
    for (uint64_t now = 101; now <= 199; ++now)
        wd.onRequest(now, true);
    EXPECT_FALSE(wd.takeReinit());
    for (uint64_t now = 200; now <= 299; ++now)
        wd.onRequest(now, true);
    EXPECT_TRUE(wd.takeReinit());
    EXPECT_FALSE(wd.takeReinit()); // one-shot
    EXPECT_EQ(wd.stats().reinits, 1u);
}

} // namespace
} // namespace xmig
