/**
 * @file
 * Tests for the register-update cache (section 6 extension).
 */

#include <gtest/gtest.h>

#include "multicore/regcache.hpp"
#include "util/rng.hpp"

namespace xmig {
namespace {

RegCacheConfig
config(unsigned entries)
{
    RegCacheConfig c;
    c.entries = entries;
    return c;
}

TEST(RegisterUpdateCache, BypassBroadcastsEverything)
{
    RegisterUpdateCache cache(config(0));
    for (unsigned r = 0; r < 10; ++r)
        EXPECT_TRUE(cache.write(r % 4));
    EXPECT_EQ(cache.stats().broadcasts, 10u);
    EXPECT_DOUBLE_EQ(cache.stats().broadcastRatio(), 1.0);
}

TEST(RegisterUpdateCache, RepeatedWritesCoalesce)
{
    RegisterUpdateCache cache(config(4));
    // Same register written 100 times: nothing leaves the cache.
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(cache.write(7));
    EXPECT_EQ(cache.stats().broadcasts, 0u);
    EXPECT_EQ(cache.pending(), 1u);
}

TEST(RegisterUpdateCache, EvictionBroadcastsLru)
{
    RegisterUpdateCache cache(config(2));
    cache.write(1);
    cache.write(2);
    cache.write(1);                 // 2 becomes LRU
    EXPECT_TRUE(cache.write(3));    // evicts 2
    EXPECT_EQ(cache.stats().broadcasts, 1u);
    EXPECT_EQ(cache.pending(), 2u);
}

TEST(RegisterUpdateCache, MigrationSpillsAllPending)
{
    RegisterUpdateCache cache(config(8));
    for (unsigned r = 0; r < 5; ++r)
        cache.write(r);
    EXPECT_EQ(cache.migrate(), 5u);
    EXPECT_EQ(cache.pending(), 0u);
    EXPECT_EQ(cache.stats().spilledEntries, 5u);
    EXPECT_EQ(cache.stats().migrationSpills, 1u);
}

TEST(RegisterUpdateCache, SkewedStreamGetsLargeReduction)
{
    // Register usage is highly skewed; a small cache should absorb
    // most of the traffic. Compare against the bypass configuration.
    RegisterUpdateCache small(config(8));
    RegisterUpdateCache large(config(32));
    RegisterUpdateCache bypass(config(0));
    Rng rng(3);
    for (int i = 0; i < 200'000; ++i) {
        // ~Zipf over 64 registers: square a uniform draw.
        const double u = rng.uniform();
        const unsigned reg =
            static_cast<unsigned>(u * u * 63.999);
        small.write(reg);
        large.write(reg);
        bypass.write(reg);
        if (i % 5000 == 4999) {
            small.migrate(); // periodic migrations spill
            large.migrate();
        }
    }
    EXPECT_DOUBLE_EQ(bypass.stats().broadcastRatio(), 1.0);
    // Reduction grows with cache size; 32 entries halve the traffic.
    EXPECT_LT(small.stats().broadcastRatio(), 0.85);
    EXPECT_LT(large.stats().broadcastRatio(), 0.5);
    EXPECT_LT(large.stats().broadcastRatio(),
              small.stats().broadcastRatio());
}

TEST(RegisterUpdateCache, BroadcastRatioNeverExceedsOne)
{
    RegisterUpdateCache cache(config(4));
    Rng rng(9);
    for (int i = 0; i < 50'000; ++i) {
        cache.write(static_cast<unsigned>(rng.below(64)));
        if (rng.chance(0.001))
            cache.migrate();
    }
    EXPECT_LE(cache.stats().broadcastRatio(), 1.0);
    EXPECT_GT(cache.stats().broadcastRatio(), 0.0);
}

} // namespace
} // namespace xmig
