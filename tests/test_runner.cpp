/**
 * @file
 * Tests for the xmig-swift work-stealing job pool and the shared
 * sweep harness: deterministic index ordering, serial-path identity
 * at jobs == 1, and exception propagation matching the serial loop.
 */

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "sim/runner/batch_queue.hpp"
#include "sim/runner/job_pool.hpp"
#include "sim/runner/sweep.hpp"

namespace xmig {
namespace {

TEST(JobPool, ResolvesWorkerCount)
{
    EXPECT_EQ(JobPool(1).jobs(), 1u);
    EXPECT_EQ(JobPool(7).jobs(), 7u);
    EXPECT_EQ(JobPool(0).jobs(), JobPool::defaultJobs());
    EXPECT_GE(JobPool::defaultJobs(), 1u);
}

TEST(JobPool, ResultsLandInIndexOrder)
{
    const JobPool pool(8);
    const std::vector<uint64_t> out = runIndexed<uint64_t>(
        pool, 100, [](size_t i) { return uint64_t(i) * i + 3; });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], uint64_t(i) * i + 3);
}

TEST(JobPool, EveryJobRunsExactlyOnce)
{
    const JobPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

// jobs == 1 must be the *literal* serial path: every job executes
// inline on the calling thread, in index order.
TEST(JobPool, SingleWorkerRunsInlineInOrder)
{
    const JobPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<size_t> order;
    pool.run(16, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

// A single job is also inline, whatever the worker count.
TEST(JobPool, SingleJobRunsInline)
{
    const JobPool pool(8);
    const std::thread::id caller = std::this_thread::get_id();
    bool ran = false;
    pool.run(1, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

// The serial loop would surface the exception of the first failing
// index; the pool must rethrow that same one after the join, and the
// independent jobs after a failure must still have run.
TEST(JobPool, RethrowsLowestIndexedFailure)
{
    const JobPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.run(64, [&](size_t i) {
            ++ran;
            if (i == 41)
                throw std::runtime_error("job 41");
            if (i == 7)
                throw std::runtime_error("job 7");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7");
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(JobPool, RethrowsLowestIndexedFailureInline)
{
    const JobPool pool(1);
    EXPECT_THROW(pool.run(4,
                          [](size_t i) {
                              if (i >= 2)
                                  throw std::range_error("boom");
                          }),
                 std::range_error);
}

RunResult
cellResult(size_t i)
{
    RunResult r;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "block %zu\n", i);
    r.text = buf;
    std::snprintf(buf, sizeof(buf), "%zu", i);
    r.rows.push_back({i < 2 ? "first" : "second", {buf, "x"}});
    return r;
}

// The sweep contract: whatever the worker count, collation happens in
// cell-index order, so the rendered output is bit-identical.
TEST(Sweep, ParallelCollationMatchesSerial)
{
    SweepSpec spec;
    spec.cells = 5;
    spec.run = cellResult;

    const std::vector<RunResult> serial = runSweep(spec, 1);
    const std::vector<RunResult> parallel = runSweep(spec, 8);
    ASSERT_EQ(serial.size(), parallel.size());

    EXPECT_EQ(collateText(serial), collateText(parallel));
    EXPECT_EQ(collateText(serial),
              "block 0\nblock 1\nblock 2\nblock 3\nblock 4\n");

    AsciiTable a({"i", "v"}), b({"i", "v"});
    collateRows(serial, a);
    collateRows(parallel, b);
    EXPECT_EQ(a.render(), b.render());
    // Section headers appear once per label change, in index order.
    const std::string text = a.render();
    EXPECT_NE(text.find("first"), std::string::npos);
    EXPECT_NE(text.find("second"), std::string::npos);
    EXPECT_LT(text.find("first"), text.find("second"));
    EXPECT_EQ(text.find("first"), text.rfind("first"));
    EXPECT_EQ(text.find("second"), text.rfind("second"));
}

TEST(Sweep, EmptySweepIsEmpty)
{
    SweepSpec spec;
    spec.cells = 0;
    spec.run = cellResult;
    const std::vector<RunResult> results = runSweep(spec, 4);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(collateText(results), "");
}

// ---------------------------------------------------------------
// BatchQueue SPSC ring corners (xmig-bolt / xmig-arena handoff).
// ---------------------------------------------------------------

BatchQueue::Chunk
chunkTagged(uint32_t tag)
{
    BatchQueue::Chunk c;
    c.count = 1;
    c.refs[0].addr = tag;
    return c;
}

TEST(BatchQueue, CapacityOneRingStillPipelines)
{
    // The degenerate ring: every push must wait for the matching
    // pop, lock-step, and order must survive.
    BatchQueue queue(1);
    EXPECT_EQ(queue.capacity(), 1u);
    std::thread producer([&queue] {
        for (uint32_t i = 0; i < 100; ++i)
            EXPECT_TRUE(queue.push(chunkTagged(i)));
        queue.close();
    });
    BatchQueue::Chunk out;
    uint32_t expected = 0;
    while (queue.pop(out))
        EXPECT_EQ(out.refs[0].addr, expected++);
    EXPECT_EQ(expected, 100u);
    producer.join();
}

TEST(BatchQueue, ZeroSlotsClampToOne)
{
    BatchQueue queue(0);
    EXPECT_EQ(queue.capacity(), 1u);
    EXPECT_TRUE(queue.push(chunkTagged(7)));
    BatchQueue::Chunk out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.refs[0].addr, 7u);
}

TEST(BatchQueue, WrapsCleanlyAtPowerOfTwoBoundary)
{
    // Drive head/tail far past several 2^k multiples of the slot
    // count and check FIFO order and payload never skew. The ring is
    // index-mod-slots, so an off-by-one at the wrap would surface as
    // a reordered or repeated tag within the first few laps.
    BatchQueue queue(8);
    constexpr uint32_t kChunks = 8 * 16 + 3; // 16 full laps + tail
    std::thread producer([&queue] {
        for (uint32_t i = 0; i < kChunks; ++i)
            EXPECT_TRUE(queue.push(chunkTagged(i)));
        queue.close();
    });
    BatchQueue::Chunk out;
    uint32_t expected = 0;
    while (queue.pop(out))
        EXPECT_EQ(out.refs[0].addr, expected++);
    EXPECT_EQ(expected, kChunks);
    producer.join();
}

TEST(BatchQueue, CloseWhileFullDrainsBufferedChunksFirst)
{
    // close() with a full ring must not drop the buffered chunks:
    // pop() keeps returning them, and only reports end-of-stream
    // once the ring is empty.
    BatchQueue queue(2);
    EXPECT_TRUE(queue.push(chunkTagged(1)));
    EXPECT_TRUE(queue.push(chunkTagged(2)));
    queue.close();
    BatchQueue::Chunk out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.refs[0].addr, 1u);
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.refs[0].addr, 2u);
    EXPECT_FALSE(queue.pop(out)) << "closed and drained";
    EXPECT_FALSE(queue.pop(out)) << "end-of-stream is sticky";
}

TEST(BatchQueue, CancelUnblocksProducerStuckOnFullRing)
{
    // The arena teardown path: a producer blocked in push() on a
    // full ring must wake and see false when the consumer cancels.
    BatchQueue queue(1);
    EXPECT_TRUE(queue.push(chunkTagged(1)));
    std::atomic<int> result{-1};
    std::thread producer([&queue, &result] {
        result = queue.push(chunkTagged(2)) ? 1 : 0;
    });
    // Give the producer a chance to block on the full ring; even if
    // cancel() lands first, push() must still report false.
    for (int i = 0; i < 256 && result == -1; ++i)
        std::this_thread::yield();
    queue.cancel();
    producer.join();
    EXPECT_EQ(result, 0) << "push after cancel must report false";
    EXPECT_TRUE(queue.cancelled());
    BatchQueue::Chunk out;
    EXPECT_FALSE(queue.pop(out))
        << "cancel discards buffered chunks and closes the stream";
    EXPECT_FALSE(queue.push(chunkTagged(3)))
        << "cancellation is sticky for future pushes";
}

} // namespace
} // namespace xmig
