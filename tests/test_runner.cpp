/**
 * @file
 * Tests for the xmig-swift work-stealing job pool and the shared
 * sweep harness: deterministic index ordering, serial-path identity
 * at jobs == 1, and exception propagation matching the serial loop.
 */

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "sim/runner/job_pool.hpp"
#include "sim/runner/sweep.hpp"

namespace xmig {
namespace {

TEST(JobPool, ResolvesWorkerCount)
{
    EXPECT_EQ(JobPool(1).jobs(), 1u);
    EXPECT_EQ(JobPool(7).jobs(), 7u);
    EXPECT_EQ(JobPool(0).jobs(), JobPool::defaultJobs());
    EXPECT_GE(JobPool::defaultJobs(), 1u);
}

TEST(JobPool, ResultsLandInIndexOrder)
{
    const JobPool pool(8);
    const std::vector<uint64_t> out = runIndexed<uint64_t>(
        pool, 100, [](size_t i) { return uint64_t(i) * i + 3; });
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], uint64_t(i) * i + 3);
}

TEST(JobPool, EveryJobRunsExactlyOnce)
{
    const JobPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

// jobs == 1 must be the *literal* serial path: every job executes
// inline on the calling thread, in index order.
TEST(JobPool, SingleWorkerRunsInlineInOrder)
{
    const JobPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<size_t> order;
    pool.run(16, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

// A single job is also inline, whatever the worker count.
TEST(JobPool, SingleJobRunsInline)
{
    const JobPool pool(8);
    const std::thread::id caller = std::this_thread::get_id();
    bool ran = false;
    pool.run(1, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

// The serial loop would surface the exception of the first failing
// index; the pool must rethrow that same one after the join, and the
// independent jobs after a failure must still have run.
TEST(JobPool, RethrowsLowestIndexedFailure)
{
    const JobPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.run(64, [&](size_t i) {
            ++ran;
            if (i == 41)
                throw std::runtime_error("job 41");
            if (i == 7)
                throw std::runtime_error("job 7");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 7");
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(JobPool, RethrowsLowestIndexedFailureInline)
{
    const JobPool pool(1);
    EXPECT_THROW(pool.run(4,
                          [](size_t i) {
                              if (i >= 2)
                                  throw std::range_error("boom");
                          }),
                 std::range_error);
}

RunResult
cellResult(size_t i)
{
    RunResult r;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "block %zu\n", i);
    r.text = buf;
    std::snprintf(buf, sizeof(buf), "%zu", i);
    r.rows.push_back({i < 2 ? "first" : "second", {buf, "x"}});
    return r;
}

// The sweep contract: whatever the worker count, collation happens in
// cell-index order, so the rendered output is bit-identical.
TEST(Sweep, ParallelCollationMatchesSerial)
{
    SweepSpec spec;
    spec.cells = 5;
    spec.run = cellResult;

    const std::vector<RunResult> serial = runSweep(spec, 1);
    const std::vector<RunResult> parallel = runSweep(spec, 8);
    ASSERT_EQ(serial.size(), parallel.size());

    EXPECT_EQ(collateText(serial), collateText(parallel));
    EXPECT_EQ(collateText(serial),
              "block 0\nblock 1\nblock 2\nblock 3\nblock 4\n");

    AsciiTable a({"i", "v"}), b({"i", "v"});
    collateRows(serial, a);
    collateRows(parallel, b);
    EXPECT_EQ(a.render(), b.render());
    // Section headers appear once per label change, in index order.
    const std::string text = a.render();
    EXPECT_NE(text.find("first"), std::string::npos);
    EXPECT_NE(text.find("second"), std::string::npos);
    EXPECT_LT(text.find("first"), text.find("second"));
    EXPECT_EQ(text.find("first"), text.rfind("first"));
    EXPECT_EQ(text.find("second"), text.rfind("second"));
}

TEST(Sweep, EmptySweepIsEmpty)
{
    SweepSpec spec;
    spec.cells = 0;
    spec.run = cellResult;
    const std::vector<RunResult> results = runSweep(spec, 4);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(collateText(results), "");
}

} // namespace
} // namespace xmig
