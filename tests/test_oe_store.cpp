/**
 * @file
 * Unit tests for O_e storage: unlimited map and the finite affinity
 * cache (section 3.5 / 4.2).
 */

#include <gtest/gtest.h>

#include "core/oe_store.hpp"

namespace xmig {
namespace {

TEST(UnboundedOeStore, MissInstallsDelta)
{
    UnboundedOeStore store(16);
    // First lookup of a line must force A_e = 0 via O_e = Delta.
    EXPECT_EQ(store.lookup(100, 42), 42);
    EXPECT_EQ(store.stats().misses, 1u);
    // Second lookup returns the stored value regardless of Delta.
    EXPECT_EQ(store.lookup(100, -7), 42);
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(UnboundedOeStore, StoreOverwrites)
{
    UnboundedOeStore store(16);
    store.lookup(5, 0);
    store.store(5, 123);
    EXPECT_EQ(store.lookup(5, 0), 123);
    EXPECT_EQ(store.peek(5), std::optional<int64_t>(123));
    EXPECT_EQ(store.peek(6), std::nullopt);
}

TEST(UnboundedOeStore, SaturatesToAffinityWidth)
{
    UnboundedOeStore store(8); // [-128, 127]
    store.store(1, 1000);
    EXPECT_EQ(store.lookup(1, 0), 127);
    store.store(1, -1000);
    EXPECT_EQ(store.lookup(1, 0), -128);
    EXPECT_EQ(store.lookup(2, 999), 127); // miss-install saturates too
}

AffinityCacheConfig
tinyCache()
{
    AffinityCacheConfig c;
    c.entries = 16;
    c.ways = 4;
    c.skewed = false;
    c.repl = ReplPolicy::Lru;
    return c;
}

TEST(AffinityCacheStore, MissForcesDelta)
{
    AffinityCacheStore store(tinyCache());
    EXPECT_EQ(store.lookup(9, -5), -5);
    EXPECT_EQ(store.lookup(9, 100), -5); // now a hit
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST(AffinityCacheStore, CapacityIsBounded)
{
    AffinityCacheStore store(tinyCache());
    for (uint64_t line = 0; line < 1000; ++line)
        store.lookup(line, 7);
    EXPECT_LE(store.occupancy(), 16u);
}

TEST(AffinityCacheStore, EvictionDropsPayload)
{
    AffinityCacheConfig c = tinyCache();
    c.entries = 4;
    c.ways = 4; // one set: easy to overflow
    AffinityCacheStore store(c);
    store.lookup(1, 0);
    store.store(1, 77);
    for (uint64_t line = 2; line < 10; ++line)
        store.lookup(line, 0);
    // Line 1 must have been displaced; a fresh lookup re-installs
    // Delta, not the stale 77.
    EXPECT_EQ(store.peek(1), std::nullopt);
    EXPECT_EQ(store.lookup(1, 5), 5);
}

TEST(AffinityCacheStore, StoreReallocatesAfterDisplacement)
{
    AffinityCacheConfig c = tinyCache();
    c.entries = 4;
    AffinityCacheStore store(c);
    store.lookup(1, 0);
    for (uint64_t line = 2; line < 10; ++line)
        store.lookup(line, 0);
    // Line 1's entry is gone; a write-back from the R-window must
    // re-allocate (write-allocate affinity cache).
    store.store(1, -3);
    EXPECT_EQ(store.peek(1), std::optional<int64_t>(-3));
}

TEST(AffinityCacheStore, StorageArithmeticMatchesPaper)
{
    // Section 3.5: 32k entries x (20-bit tag + 16-bit affinity +
    // 2 age bits) = 152 KB; 8k entries = 38 KB.
    AffinityCacheConfig c;
    c.entries = 32 * 1024;
    AffinityCacheStore big(c);
    EXPECT_EQ(big.storageBits(20) / 8 / 1024, 152u);
    c.entries = 8 * 1024;
    AffinityCacheStore small(c);
    EXPECT_EQ(small.storageBits(20) / 8 / 1024, 38u);
}

TEST(OeStoreStats, UnboundedStoreAccounting)
{
    UnboundedOeStore store(16);
    store.lookup(1, 0); // miss
    store.lookup(1, 0); // hit
    store.lookup(2, 0); // miss
    store.store(3, 7);
    store.lookup(3, 0); // hit (direct store created the entry)
    const OeStoreStats &s = store.stats();
    EXPECT_EQ(s.lookups, 4u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits(), 2u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.evictions, 0u); // unbounded storage never evicts
    EXPECT_EQ(store.entries(), 3u);
}

TEST(OeStoreStats, AffinityCacheCountsEvictions)
{
    // A tiny cache under a working set 8x its capacity must evict;
    // every eviction is counted and hits + misses stay consistent.
    AffinityCacheConfig c;
    c.entries = 64;
    c.ways = 4;
    c.skewed = false;
    AffinityCacheStore store(c);
    const uint64_t kLines = 512;
    const int rounds = 4;
    for (int r = 0; r < rounds; ++r) {
        for (uint64_t line = 0; line < kLines; ++line)
            store.lookup(line, 0);
    }
    const OeStoreStats &s = store.stats();
    EXPECT_EQ(s.lookups, kLines * rounds);
    EXPECT_EQ(s.hits(), s.lookups - s.misses);
    EXPECT_GT(s.evictions, 0u);
    // Each eviction displaced an earlier fill; the cache can never
    // have evicted more entries than it allocated.
    EXPECT_LE(s.evictions, s.misses + s.stores);
    // Occupancy + evictions = entries ever allocated by misses (no
    // store() fills happened here).
    EXPECT_EQ(store.occupancy() + s.evictions, s.misses);
    EXPECT_LE(store.occupancy(), c.entries);
}

TEST(OeStoreStats, StoreDisplacementCountsAsEviction)
{
    AffinityCacheConfig c;
    c.entries = 16;
    c.ways = 2;
    c.skewed = false;
    AffinityCacheStore store(c);
    // Fill via direct store() writes (the R-window write-back path).
    for (uint64_t line = 0; line < 256; ++line)
        store.store(line, 1);
    const OeStoreStats &s = store.stats();
    EXPECT_EQ(s.stores, 256u);
    EXPECT_EQ(s.lookups, 0u);
    EXPECT_GT(s.evictions, 0u);
    EXPECT_EQ(store.occupancy() + s.evictions, s.stores);
}

TEST(AffinityCacheStore, SkewedVariantWorks)
{
    AffinityCacheConfig c;
    c.entries = 8 * 1024;
    c.ways = 4;
    c.skewed = true;
    c.repl = ReplPolicy::Age;
    AffinityCacheStore store(c);
    for (uint64_t line = 0; line < 6000; ++line)
        store.lookup(0x4000000 + line, 3);
    // A sequential working-set below capacity should mostly fit.
    EXPECT_GT(store.occupancy(), 5000u);
    EXPECT_LE(store.occupancy(), 8 * 1024u);
}

} // namespace
} // namespace xmig
