/**
 * @file
 * Coverage for API corners not exercised elsewhere: stats resets,
 * sink rewiring, engine A_R accessors across widths, splitter filter
 * accessors, and machine stats reset semantics.
 */

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/l1_filter.hpp"
#include "core/splitter.hpp"
#include "multicore/machine.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

TEST(ApiCorners, CacheResetStatsKeepsContents)
{
    CacheConfig cfg;
    cfg.capacityBytes = 8 * 64;
    cfg.ways = 2;
    Cache cache(cfg);
    cache.access(1, false);
    cache.access(1, false);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.contains(1)); // contents survive
    cache.access(1, false);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ApiCorners, L1FilterSinkCanBeRewired)
{
    struct CaptureSink : LineSink
    {
        uint64_t events = 0;
        void onLine(const LineEvent &) override { ++events; }
    };
    CaptureSink first, second;
    L1FilterConfig c;
    c.il1Bytes = 4 * 64;
    c.dl1Bytes = 4 * 64;
    L1Filter filter(c, first);
    filter.access(MemRef::load(0x1000));
    EXPECT_EQ(first.events, 1u);
    filter.setSink(second);
    filter.access(MemRef::load(0x2000));
    EXPECT_EQ(first.events, 1u);
    EXPECT_EQ(second.events, 1u);
}

TEST(ApiCorners, EngineExposesDeltaAndWindowAffinity)
{
    for (unsigned bits : {8u, 16u, 24u}) {
        EngineConfig ec;
        ec.affinityBits = bits;
        ec.windowSize = 32;
        UnboundedOeStore store(bits);
        AffinityEngine engine(ec, store);
        CircularStream s(500);
        for (int t = 0; t < 10'000; ++t)
            engine.reference(s.next());
        // Delta is bounded by its (bits+1)-wide saturation range.
        EXPECT_GE(engine.delta(), SatInt::minForBits(bits + 1));
        EXPECT_LE(engine.delta(), SatInt::maxForBits(bits + 1));
        EXPECT_EQ(engine.references(), 10'000u);
        EXPECT_EQ(engine.config().affinityBits, bits);
    }
}

TEST(ApiCorners, FourWaySplitterFilterAccessors)
{
    UnboundedOeStore store(16);
    FourWaySplitter::Config c;
    FourWaySplitter splitter(c, store);
    EXPECT_EQ(splitter.filterX().value(), 0);
    EXPECT_EQ(splitter.filterY(+1).value(), 0);
    EXPECT_EQ(splitter.filterY(-1).value(), 0);
    UniformRandomStream s(1000);
    for (int t = 0; t < 20'000; ++t)
        splitter.onReference(s.next());
    // All three filters received traffic.
    EXPECT_GT(splitter.filterX().updates(), 0u);
    EXPECT_GT(splitter.filterY(+1).updates() +
                  splitter.filterY(-1).updates(),
              0u);
}

TEST(ApiCorners, MachineResetStatsKeepsTraining)
{
    MachineConfig cfg;
    MigrationMachine m(cfg);
    CircularStream s(20'000);
    for (int t = 0; t < 500'000; ++t)
        m.access(MemRef::load(0x40000000 + s.next() * 64));
    const unsigned active_before = m.activeCore();
    m.resetStats();
    EXPECT_EQ(m.stats().l2Misses, 0u);
    EXPECT_EQ(m.stats().migrations, 0u);
    // Machine *state* survives: active core, cache contents, and the
    // controller's training, so post-reset behavior is steady-state.
    EXPECT_EQ(m.activeCore(), active_before);
    EXPECT_GT(m.l2(active_before).tags().occupancy(), 0u);
    for (int t = 0; t < 100'000; ++t)
        m.access(MemRef::load(0x40000000 + s.next() * 64));
    // Trained machine: far fewer misses than accesses.
    EXPECT_LT(m.stats().l2Misses, m.stats().l2Accesses / 2);
}

TEST(ApiCorners, RefSinkPolymorphismAcceptsMachine)
{
    // A MigrationMachine is a RefSink like any other consumer.
    MachineConfig cfg;
    cfg.numCores = 1;
    MigrationMachine m(cfg);
    RefSink &sink = m;
    sink.access(MemRef::ifetch(0x400000));
    EXPECT_EQ(m.stats().instructions, 1u);
}

} // namespace
} // namespace xmig
