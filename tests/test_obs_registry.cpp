/**
 * @file
 * xmig-scope metrics registry (obs/registry.hpp) and the JSON helpers
 * behind its exporters (obs/json.hpp).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace xmig::obs {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, IntegralPrintsWithoutFraction)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(123456.0), "123456");
    EXPECT_EQ(jsonNumber(-42.0), "-42");
}

TEST(JsonNumber, NonFiniteDegradesToNull)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonNumber, FractionalRoundTrips)
{
    const std::string s = jsonNumber(0.1);
    EXPECT_DOUBLE_EQ(std::stod(s), 0.1);
}

TEST(JsonValidator, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(jsonParseOk("{}"));
    EXPECT_TRUE(jsonParseOk("[]"));
    EXPECT_TRUE(jsonParseOk("{\"a\":[1,2.5,-3e4,null,true,\"x\"]}"));
    EXPECT_TRUE(jsonParseOk("  {\"nested\":{\"deep\":[{}]}}  "));
}

TEST(JsonValidator, RejectsMalformedDocuments)
{
    EXPECT_FALSE(jsonParseOk(""));
    EXPECT_FALSE(jsonParseOk("{"));
    EXPECT_FALSE(jsonParseOk("{\"a\":}"));
    EXPECT_FALSE(jsonParseOk("[1,]"));
    EXPECT_FALSE(jsonParseOk("{\"a\":1}{\"b\":2}")); // trailing junk
    EXPECT_FALSE(jsonParseOk("{\"unterminated"));
    EXPECT_FALSE(jsonParseOk("{'a':1}"));
}

TEST(Registry, RegistersAndReadsEveryKind)
{
    MetricsRegistry r;
    uint64_t counter = 7;
    Histogram h;
    h.record(0);
    h.record(5);
    double gauge_value = 1.5;

    EXPECT_TRUE(r.addCounter("m.counter", &counter));
    EXPECT_TRUE(r.addGauge("m.gauge", [&] { return gauge_value; }));
    EXPECT_TRUE(r.addHistogram("m.hist", &h));
    EXPECT_EQ(r.size(), 3u);

    EXPECT_EQ(r.kindOf("m.counter"), MetricKind::Counter);
    EXPECT_EQ(r.kindOf("m.gauge"), MetricKind::Gauge);
    EXPECT_EQ(r.kindOf("m.hist"), MetricKind::Histogram);
    EXPECT_EQ(r.kindOf("m.missing"), std::nullopt);

    EXPECT_EQ(r.value("m.counter"), 7.0);
    counter = 9; // registry holds a pointer, not a copy
    EXPECT_EQ(r.value("m.counter"), 9.0);
    EXPECT_EQ(r.value("m.gauge"), 1.5);
    gauge_value = 2.0; // gauges re-run their closure
    EXPECT_EQ(r.value("m.gauge"), 2.0);
    EXPECT_EQ(r.value("m.hist"), 2.0); // sample count
    EXPECT_EQ(r.value("m.missing"), std::nullopt);
}

TEST(Registry, CounterValueIsExactAndCounterOnly)
{
    MetricsRegistry r;
    // A value a double cannot hold exactly: 2^53 + 1.
    uint64_t big = (uint64_t{1} << 53) + 1;
    uint64_t small = 3;
    Histogram h;
    EXPECT_TRUE(r.addCounter("m.big", &big));
    EXPECT_TRUE(r.addCounter("m.small", &small));
    EXPECT_TRUE(r.addGauge("m.gauge", [] { return 1.0; }));
    EXPECT_TRUE(r.addHistogram("m.hist", &h));

    EXPECT_EQ(r.counterValue("m.big"), (uint64_t{1} << 53) + 1);
    EXPECT_EQ(r.counterValue("m.small"), 3u);
    small = 4; // live pointer, not a copy
    EXPECT_EQ(r.counterValue("m.small"), 4u);

    // Non-counters and unknown paths read back as nullopt, never 0.
    EXPECT_EQ(r.counterValue("m.gauge"), std::nullopt);
    EXPECT_EQ(r.counterValue("m.hist"), std::nullopt);
    EXPECT_EQ(r.counterValue("m.missing"), std::nullopt);
}

TEST(Registry, CounterSnapshotIsNameSortedCountersOnly)
{
    MetricsRegistry r;
    uint64_t z = 26, a = 1, m = 13;
    Histogram h;
    EXPECT_TRUE(r.addCounter("zulu", &z));
    EXPECT_TRUE(r.addGauge("golf", [] { return 7.0; }));
    EXPECT_TRUE(r.addCounter("alpha", &a));
    EXPECT_TRUE(r.addHistogram("hotel", &h));
    EXPECT_TRUE(r.addCounter("mike", &m));

    const auto snap = r.counterSnapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], (MetricsRegistry::CounterSample{"alpha", 1}));
    EXPECT_EQ(snap[1], (MetricsRegistry::CounterSample{"mike", 13}));
    EXPECT_EQ(snap[2], (MetricsRegistry::CounterSample{"zulu", 26}));

    // The snapshot is a copy taken at call time.
    m = 99;
    EXPECT_EQ(snap[1].value, 13u);
    EXPECT_EQ(r.counterSnapshot()[1].value, 99u);
}

TEST(Registry, DuplicatePathsAreRefusedNotAliased)
{
    MetricsRegistry r;
    uint64_t a = 1, b = 2;
    EXPECT_TRUE(r.addCounter("dup", &a));
    EXPECT_FALSE(r.addCounter("dup", &b));
    EXPECT_FALSE(r.addGauge("dup", [] { return 3.0; }));
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.value("dup"), 1.0); // first registration wins
}

TEST(Registry, JsonlIsSortedAndEveryLineParses)
{
    MetricsRegistry r;
    uint64_t c = 12;
    Histogram h;
    h.record(3);
    r.addGauge("z.last", [] { return 0.5; });
    r.addCounter("a.first", &c);
    r.addHistogram("m.mid", &h);

    const std::string jsonl = r.renderJsonl();
    std::istringstream lines(jsonl);
    std::string line;
    std::vector<std::string> seen;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(jsonParseOk(line)) << line;
        seen.push_back(line);
    }
    ASSERT_EQ(seen.size(), 3u);
    // Sorted by name regardless of registration order.
    EXPECT_NE(seen[0].find("\"a.first\""), std::string::npos);
    EXPECT_NE(seen[1].find("\"m.mid\""), std::string::npos);
    EXPECT_NE(seen[2].find("\"z.last\""), std::string::npos);

    EXPECT_EQ(seen[0],
              "{\"name\":\"a.first\",\"kind\":\"counter\","
              "\"value\":12}");
    // Histograms carry their buckets; bucket 2 counts bit_width-2
    // samples (2..3).
    EXPECT_NE(seen[1].find("\"buckets\":[0,0,1"), std::string::npos);
}

TEST(Registry, CsvGolden)
{
    MetricsRegistry r;
    uint64_t c = 3;
    r.addCounter("plain.counter", &c);
    r.addGauge("awkward, name", [] { return 1.0; });
    EXPECT_EQ(r.renderCsv(),
              "name,kind,value\n"
              "\"awkward, name\",gauge,1\n"
              "plain.counter,counter,3\n");
}

TEST(Registry, TableRenderMentionsEveryMetric)
{
    MetricsRegistry r;
    uint64_t c = 5;
    r.addCounter("machine.l2.misses", &c);
    const std::string table = r.renderTable("run metrics");
    EXPECT_NE(table.find("run metrics"), std::string::npos);
    EXPECT_NE(table.find("machine.l2.misses"), std::string::npos);
    EXPECT_NE(table.find("counter"), std::string::npos);
}

TEST(Registry, WriteJsonlRoundTripsThroughDisk)
{
    MetricsRegistry r;
    uint64_t c = 77;
    r.addCounter("disk.counter", &c);
    const std::string path =
        testing::TempDir() + "xmig_obs_registry_test.jsonl";
    ASSERT_TRUE(r.writeJsonl(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(std::string(buf, n), r.renderJsonl());
}

TEST(Registry, WriteToUnwritablePathFails)
{
    MetricsRegistry r;
    uint64_t c = 1;
    r.addCounter("c", &c);
    EXPECT_FALSE(r.writeJsonl("/nonexistent-dir/metrics.jsonl"));
}

TEST(Histogram, BucketsByBitWidth)
{
    Histogram h(8);
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(2); // bucket 2
    h.record(3); // bucket 2
    h.record(200); // bucket 8 clamps to last (7)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets().back(), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.buckets()[2], 0u);
}

TEST(HistogramPercentile, EmptyHistogramReportsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);
}

TEST(HistogramPercentile, ZeroSamplesAreExactlyZero)
{
    // Bucket 0 holds exactly v == 0 — no interpolation smear.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 0.0);
}

TEST(HistogramPercentile, PowerOfTwoSingleSampleIsExact)
{
    // A single sample lands on its bucket's lower bound, and 2^k *is*
    // the lower bound of bucket k+1 — so powers of two round-trip.
    for (const uint64_t v : {1u, 2u, 64u, 1024u, 65536u}) {
        Histogram h;
        h.record(v);
        EXPECT_DOUBLE_EQ(h.percentile(50), static_cast<double>(v)) << v;
        EXPECT_DOUBLE_EQ(h.percentile(99.9), static_cast<double>(v))
            << v;
    }
}

TEST(HistogramPercentile, OutOfRangePIsClamped)
{
    Histogram h;
    h.record(0);
    h.record(1024);
    EXPECT_DOUBLE_EQ(h.percentile(-10), h.percentile(0));
    EXPECT_DOUBLE_EQ(h.percentile(500), h.percentile(100));
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 1024.0);
}

TEST(HistogramPercentile, InterpolatesInsideABucket)
{
    // 3 samples in bucket 11 ([1024, 2047]): ranks spread linearly
    // across the span, endpoints on the bounds.
    Histogram h;
    h.record(1024);
    h.record(1500);
    h.record(2000);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1024.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 2047.0);
    const double p50 = h.percentile(50);
    EXPECT_GT(p50, 1024.0);
    EXPECT_LT(p50, 2047.0);
    // Percentiles are monotone in p.
    EXPECT_LE(h.percentile(50), h.percentile(95));
    EXPECT_LE(h.percentile(95), h.percentile(99));
}

TEST(HistogramPercentile, ExportersCarryPercentiles)
{
    MetricsRegistry r;
    Histogram h;
    h.record(256); // one sample: every percentile is exactly 256
    ASSERT_TRUE(r.addHistogram("machine.gap", &h));
    const std::string jsonl = r.renderJsonl();
    EXPECT_NE(jsonl.find("\"p50\":256"), std::string::npos) << jsonl;
    EXPECT_NE(jsonl.find("\"p95\":256"), std::string::npos) << jsonl;
    EXPECT_NE(jsonl.find("\"p99\":256"), std::string::npos) << jsonl;
    EXPECT_NE(jsonl.find("\"p999\":256"), std::string::npos) << jsonl;
    const std::string table = r.renderTable("t");
    EXPECT_NE(table.find("p50"), std::string::npos) << table;
    EXPECT_NE(table.find("p99"), std::string::npos) << table;
}

TEST(HistogramPercentile, ZeroHeavyMassKeepsOutlierInTheTail)
{
    // 99 zeros and one large sample: the median must stay exactly
    // zero (bucket 0 is v == 0, no smear into it) and only the very
    // tail may see the outlier. This is the shape of an arena turn
    // histogram when one tenant stalls once.
    Histogram h;
    for (int i = 0; i < 99; ++i)
        h.record(0);
    h.record(1024);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(95), 0.0);
    EXPECT_GE(h.percentile(100), 1024.0);
    EXPECT_LE(h.percentile(99), h.percentile(100));
}

TEST(HistogramPercentile, SaturatingSampleStaysFinite)
{
    // The open-ended last bucket absorbs UINT64_MAX; the percentile
    // must come back finite (its nominal span), not inf/nan.
    Histogram h;
    h.record(~0ull);
    const double p50 = h.percentile(50);
    EXPECT_TRUE(std::isfinite(p50));
    EXPECT_GT(p50, 0.0);
    EXPECT_TRUE(std::isfinite(h.percentile(100)));
}

TEST(HistogramPercentile, ResetRestoresTheEmptyState)
{
    Histogram h;
    h.record(7);
    h.record(70000);
    ASSERT_GT(h.percentile(50), 0.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);
    uint64_t total = 0;
    for (uint64_t b : h.buckets())
        total += b;
    EXPECT_EQ(total, 0u);
}

TEST(Registry, CounterSnapshotOrderIsByteLexicographic)
{
    // Arena metric paths embed tenant indices ("tenant10" vs
    // "tenant2"): the snapshot contract is plain byte order, not
    // numeric order, and '.' sorts before digits — pin that down so
    // exporters and diff tools agree forever.
    MetricsRegistry r;
    uint64_t v1 = 1, v2 = 2, v3 = 3, v4 = 4;
    EXPECT_TRUE(r.addCounter("a.tenant2.refs", &v1));
    EXPECT_TRUE(r.addCounter("a.tenant10.refs", &v2));
    EXPECT_TRUE(r.addCounter("a.tenant1.refs", &v3));
    EXPECT_TRUE(r.addCounter("a.tenant1", &v4));
    const auto snap = r.counterSnapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].name, "a.tenant1");
    EXPECT_EQ(snap[1].name, "a.tenant1.refs");
    EXPECT_EQ(snap[2].name, "a.tenant10.refs");
    EXPECT_EQ(snap[3].name, "a.tenant2.refs");
}

TEST(Registry, CounterSnapshotIsStableAcrossCallsAndInsertions)
{
    // Repeated snapshots must agree element-for-element, and a later
    // registration must only insert — never reorder the others.
    MetricsRegistry r;
    uint64_t z = 26, a = 1;
    EXPECT_TRUE(r.addCounter("zulu", &z));
    EXPECT_TRUE(r.addCounter("alpha", &a));
    const auto first = r.counterSnapshot();
    const auto second = r.counterSnapshot();
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(first[i].value, second[i].value);
    }
    uint64_t m = 13;
    EXPECT_TRUE(r.addCounter("mike", &m));
    const auto third = r.counterSnapshot();
    ASSERT_EQ(third.size(), 3u);
    EXPECT_EQ(third[0].name, "alpha");
    EXPECT_EQ(third[1].name, "mike");
    EXPECT_EQ(third[2].name, "zulu");
    EXPECT_TRUE(r.counterSnapshot().empty() == false);
}

TEST(Registry, EmptyAndCounterlessRegistriesSnapshotEmpty)
{
    MetricsRegistry r;
    EXPECT_TRUE(r.counterSnapshot().empty());
    Histogram h;
    EXPECT_TRUE(r.addGauge("g", [] { return 1.0; }));
    EXPECT_TRUE(r.addHistogram("h", &h));
    EXPECT_TRUE(r.counterSnapshot().empty())
        << "gauges and histograms are not counters";
}

} // namespace
} // namespace xmig::obs
