/**
 * @file
 * Unit tests for the update-bus bandwidth model (section 2.3) and the
 * migration cost model (sections 2.4, 4.2).
 */

#include <gtest/gtest.h>

#include "multicore/cost_model.hpp"
#include "multicore/update_bus.hpp"

namespace xmig {
namespace {

TEST(UpdateBus, PaperParametersGiveAbout45Bytes)
{
    // 4x(6+64) + 64 + 16 + 4x2 bits = 368 bits = 46 bytes; the paper
    // rounds to "approximately 45 bytes per cycle".
    UpdateBusModel model;
    EXPECT_EQ(model.bitsPerCycle(), 368u);
    EXPECT_NEAR(model.bytesPerCycle(), 45.0, 1.5);
}

TEST(UpdateBus, ScalesWithRetireWidth)
{
    RetireProfile narrow;
    narrow.retireWidth = 1;
    RetireProfile wide;
    wide.retireWidth = 8;
    EXPECT_LT(UpdateBusModel(narrow).bitsPerCycle(),
              UpdateBusModel(wide).bitsPerCycle());
}

TEST(UpdateBus, PerInstructionAverageIsMonotonic)
{
    UpdateBusModel m;
    EXPECT_LT(m.bytesPerInstruction(0.0, 0.0, 0.0),
              m.bytesPerInstruction(0.3, 0.0, 0.0));
    EXPECT_LT(m.bytesPerInstruction(0.1, 0.1, 0.5),
              m.bytesPerInstruction(0.1, 0.1, 0.9));
    // An all-register-writing mix costs ~(2+6+64)/8 = 9 bytes.
    EXPECT_NEAR(m.bytesPerInstruction(0.0, 0.0, 1.0), 9.0, 0.1);
}

TEST(CostModel, BreakEvenMatchesPaperMcfArithmetic)
{
    // Section 4.2: mcf has a migration every 4500 instructions, an
    // L2 miss every 24 (baseline) and every 36 (with migration):
    // removed misses per migration = 4500/24 - 4500/36 = 62.5,
    // which the paper rounds to "approximately 60".
    MigrationTradeoff t;
    t.instructions = 1'000'000'000;
    t.l2MissesBaseline = t.instructions / 24;
    t.l2MissesMigration = t.instructions / 36;
    t.migrations = t.instructions / 4500;
    EXPECT_NEAR(breakEvenPmig(t), 62.5, 0.2);
}

TEST(CostModel, NoMigrationsMeansZeroBreakEven)
{
    MigrationTradeoff t;
    t.migrations = 0;
    t.l2MissesBaseline = 100;
    EXPECT_EQ(breakEvenPmig(t), 0.0);
}

TEST(CostModel, SpeedupCrossesOneAtBreakEven)
{
    MigrationTradeoff t;
    t.instructions = 10'000'000;
    t.l2MissesBaseline = 500'000;
    t.l2MissesMigration = 100'000;
    t.migrations = 10'000;
    const double breakeven = breakEvenPmig(t); // 40

    TimingParams below;
    below.pmig = breakeven - 1;
    EXPECT_GT(estimatedSpeedup(t, below), 1.0);

    TimingParams above;
    above.pmig = breakeven + 1;
    EXPECT_LT(estimatedSpeedup(t, above), 1.0);

    TimingParams at;
    at.pmig = breakeven;
    EXPECT_NEAR(estimatedSpeedup(t, at), 1.0, 1e-9);
}

TEST(CostModel, EstimatedCyclesComposition)
{
    TimingParams p;
    p.baseCpi = 1.0;
    p.l3HitPenalty = 20.0;
    p.pmig = 10.0;
    EXPECT_EQ(estimatedCycles(1000, 10, 2, p),
              1000.0 + 200.0 + 400.0);
}

} // namespace
} // namespace xmig
