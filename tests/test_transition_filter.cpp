/**
 * @file
 * Unit and property tests for the transition filter (section 3.4).
 */

#include <gtest/gtest.h>

#include "core/transition_filter.hpp"
#include "util/rng.hpp"

namespace xmig {
namespace {

TEST(TransitionFilter, StartsPositive)
{
    TransitionFilter f(18);
    EXPECT_EQ(f.side(), 1); // sign(0) = +1
    EXPECT_EQ(f.value(), 0);
}

TEST(TransitionFilter, FlipsOnSignChange)
{
    TransitionFilter f(18);
    EXPECT_FALSE(f.update(100)); // still positive
    EXPECT_TRUE(f.update(-200)); // crosses below zero
    EXPECT_EQ(f.side(), -1);
    EXPECT_TRUE(f.update(300));
    EXPECT_EQ(f.side(), 1);
    EXPECT_EQ(f.transitions(), 2u);
    EXPECT_EQ(f.updates(), 3u);
}

TEST(TransitionFilter, SaturatesAtWidth)
{
    TransitionFilter f(8); // [-128, 127]
    for (int i = 0; i < 100; ++i)
        f.update(1000);
    EXPECT_EQ(f.value(), 127);
    EXPECT_TRUE(f.saturated());
}

TEST(TransitionFilter, ExtraBitsHalveRandomTransitions)
{
    // With saturated random +/-2^15 inputs, b filter bits give a
    // transition frequency near 1/2^(1+b-16) (section 3.4).
    double prev_freq = 1.0;
    for (unsigned bits = 17; bits <= 21; ++bits) {
        TransitionFilter f(bits);
        Rng rng(bits);
        const int kSteps = 400'000;
        for (int i = 0; i < kSteps; ++i)
            f.update(rng.chance(0.5) ? 32767 : -32768);
        const double freq =
            static_cast<double>(f.transitions()) / kSteps;
        const double predicted =
            1.0 / static_cast<double>(1ULL << (1 + bits - 16));
        EXPECT_NEAR(freq, predicted, predicted * 0.35)
            << "bits = " << bits;
        EXPECT_LT(freq, prev_freq);
        prev_freq = freq;
    }
}

TEST(TransitionFilter, DetectionDelayGrowsWithBits)
{
    // On a splittable set the filter adds latency: from positive
    // saturation, the number of full-magnitude negative updates to
    // flip is ~2^(b-16) (16 with 20-bit filters, as in the paper).
    for (unsigned bits : {18u, 20u}) {
        TransitionFilter f(bits);
        for (int i = 0; i < 100; ++i)
            f.update(32767); // saturate positive
        unsigned steps = 0;
        while (f.side() > 0) {
            f.update(-32768);
            ++steps;
        }
        const unsigned expected = 1u << (bits - 16);
        EXPECT_GE(steps, expected);
        EXPECT_LE(steps, expected + 2);
    }
}

} // namespace
} // namespace xmig
