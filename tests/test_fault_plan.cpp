/**
 * @file
 * Grammar and validation tests for xmig-iron fault plans.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"

namespace xmig {
namespace {

FaultPlan
mustParse(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(FaultPlan::parse(spec, &plan, &error)) << error;
    return plan;
}

std::string
mustFail(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(FaultPlan, EmptySpecIsInert)
{
    const FaultPlan plan = mustParse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ParsesTheDocExample)
{
    const FaultPlan plan = mustParse(
        "seed=7;at=500000:core_off=2;at=900000:core_on=2;"
        "rate=1e-5:flip=oe;rate=1e-6:mig_drop;rate=1e-6:bus_drop");
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.scheduled.size(), 2u);
    ASSERT_EQ(plan.rates.size(), 3u);
    EXPECT_EQ(plan.scheduled[0].site, FaultSite::CoreOff);
    EXPECT_EQ(plan.scheduled[0].at, 500'000u);
    EXPECT_EQ(plan.scheduled[0].core, 2u);
    EXPECT_EQ(plan.scheduled[1].site, FaultSite::CoreOn);
    EXPECT_DOUBLE_EQ(plan.rates[0].rate, 1e-5);
    EXPECT_EQ(plan.rates[0].site, FaultSite::OeEntry);
    EXPECT_EQ(plan.rates[1].site, FaultSite::MigDrop);
    EXPECT_EQ(plan.rates[2].site, FaultSite::BusDrop);
}

TEST(FaultPlan, ScheduledRulesSortByTick)
{
    const FaultPlan plan = mustParse(
        "at=900:flip=ae;at=100:flip=delta;at=500:flip=ar");
    ASSERT_EQ(plan.scheduled.size(), 3u);
    EXPECT_EQ(plan.scheduled[0].at, 100u);
    EXPECT_EQ(plan.scheduled[1].at, 500u);
    EXPECT_EQ(plan.scheduled[2].at, 900u);
}

TEST(FaultPlan, ParsesEveryFlipSite)
{
    const FaultPlan plan = mustParse(
        "at=1:flip=ae;at=2:flip=delta;at=3:flip=ar;at=4:flip=oe;"
        "at=5:flip=tag");
    ASSERT_EQ(plan.scheduled.size(), 5u);
    EXPECT_EQ(plan.scheduled[0].site, FaultSite::Ae);
    EXPECT_EQ(plan.scheduled[1].site, FaultSite::Delta);
    EXPECT_EQ(plan.scheduled[2].site, FaultSite::Ar);
    EXPECT_EQ(plan.scheduled[3].site, FaultSite::OeEntry);
    EXPECT_EQ(plan.scheduled[4].site, FaultSite::CacheTag);
}

TEST(FaultPlan, MigDelayCarriesItsDelay)
{
    const FaultPlan plan = mustParse("rate=0.5:mig_delay=16");
    ASSERT_EQ(plan.rates.size(), 1u);
    EXPECT_EQ(plan.rates[0].site, FaultSite::MigDelay);
    EXPECT_EQ(plan.rates[0].delay, 16u);
}

TEST(FaultPlan, TargetsReportsBothFlavors)
{
    const FaultPlan plan =
        mustParse("at=10:flip=delta;rate=1e-4:bus_drop");
    EXPECT_TRUE(plan.targets(FaultSite::Delta));
    EXPECT_TRUE(plan.targets(FaultSite::BusDrop));
    EXPECT_FALSE(plan.targets(FaultSite::Ae));
    EXPECT_FALSE(plan.targets(FaultSite::MigDrop));
}

TEST(FaultPlan, SiteNamesAreStable)
{
    EXPECT_STREQ(faultSiteName(FaultSite::Ae), "ae");
    EXPECT_STREQ(faultSiteName(FaultSite::Delta), "delta");
    EXPECT_STREQ(faultSiteName(FaultSite::Ar), "ar");
    EXPECT_STREQ(faultSiteName(FaultSite::OeEntry), "oe");
    EXPECT_STREQ(faultSiteName(FaultSite::CacheTag), "tag");
    EXPECT_STREQ(faultSiteName(FaultSite::MigDrop), "mig_drop");
    EXPECT_STREQ(faultSiteName(FaultSite::MigDelay), "mig_delay");
    EXPECT_STREQ(faultSiteName(FaultSite::BusDrop), "bus_drop");
    EXPECT_STREQ(faultSiteName(FaultSite::CoreOff), "core_off");
    EXPECT_STREQ(faultSiteName(FaultSite::CoreOn), "core_on");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    mustFail("at=:flip=ae");            // missing tick
    mustFail("at=5:flip=bogus");        // unknown flip site
    mustFail("at=5:warp_core");         // unknown event
    mustFail("rate=2.0:bus_drop");      // probability > 1
    mustFail("rate=-0.1:bus_drop");     // negative probability
    mustFail("rate=nope:bus_drop");     // non-numeric rate
    mustFail("at=5:core_off=64");       // core id out of range
    mustFail("at=5:core_off=");         // missing core id
    mustFail("at=5:mig_delay=0");       // zero delay
    mustFail("at=5:mig_drop=3");        // stray argument
    mustFail("seed=");                  // missing seed value
    mustFail("frobnicate=1");           // unknown statement
}

TEST(FaultPlan, RejectsEmptyStatements)
{
    mustFail(";");                      // lone separator
    mustFail(";at=5:flip=ae");          // leading ';'
    mustFail("at=5:flip=ae;");          // trailing ';'
    mustFail("at=5:flip=ae;;rate=0.1:bus_drop"); // interior ';;'
    EXPECT_NE(mustFail("at=5:flip=ae;").find("trailing"),
              std::string::npos);
    EXPECT_NE(mustFail(";at=5:flip=ae").find("stray"),
              std::string::npos);
}

TEST(FaultPlan, RejectsBadRatesPerProduction)
{
    mustFail("rate=:bus_drop");         // empty rate
    mustFail("rate=1.0001:bus_drop");   // just above 1
    mustFail("rate=inf:bus_drop");      // non-finite
    mustFail("rate=-inf:bus_drop");     // non-finite, negative
    mustFail("rate=nan:bus_drop");      // not a number
    mustFail("rate=1e400:bus_drop");    // overflows a double
    mustFail("rate=0.5x:bus_drop");     // trailing garbage
    mustFail("rate= 0.5:bus_drop");     // embedded blank
    mustFail("rate=-0:bus_drop");       // negative zero
    mustFail("rate=+0.5:bus_drop");     // explicit sign
    mustParse("rate=0:bus_drop");       // boundaries are legal...
    mustParse("rate=1:bus_drop");
    mustParse("rate=1e-300:bus_drop");  // ...and so are tiny rates
}

TEST(FaultPlan, RejectsBadTicksPerProduction)
{
    mustFail("at=-1:flip=ae");          // signed
    mustFail("at=+1:flip=ae");          // explicit sign
    mustFail("at= 1:flip=ae");          // embedded blank
    mustFail("at=1.5:flip=ae");         // fractional
    mustFail("at=99999999999999999999:flip=ae"); // > UINT64_MAX
    mustFail("at=12x:flip=ae");         // trailing garbage
    mustParse("at=0:flip=ae");          // tick 0 is legal
    mustParse("at=18446744073709551615:flip=ae"); // UINT64_MAX too
}

TEST(FaultPlan, RejectsBadSeedsAndTriggers)
{
    mustFail("seed=-3");                // signed seed
    mustFail("seed=3.5");               // fractional seed
    mustFail("seed=0x10");              // hex not accepted
    mustFail("at5:flip=ae");            // mangled trigger key
    mustFail("flip=ae");                // event without a trigger
    mustFail("at=5");                   // trigger without an event
    mustFail("at=5:");                  // empty event
    mustFail("rate=0.1:core_on");       // churn without a core id
    mustFail("at=5:bus_drop=1");        // stray bus_drop argument
    mustFail("at=5:flip");              // flip without a site
}

TEST(FaultPlan, ToStringMatchesTheDocExampleGolden)
{
    const FaultPlan plan = mustParse(
        "seed=7;at=500000:core_off=2;at=900000:core_on=2;"
        "rate=1e-5:flip=oe;rate=1e-6:mig_drop;rate=1e-6:bus_drop");
    EXPECT_EQ(plan.toString(),
              "seed=7;at=500000:core_off=2;at=900000:core_on=2;"
              "rate=1e-05:flip=oe;rate=1e-06:mig_drop;"
              "rate=1e-06:bus_drop");
}

TEST(FaultPlan, ToStringRoundTripsBoundarySpecs)
{
    const char *specs[] = {
        "",
        "seed=18446744073709551615",
        "at=0:flip=ae;at=18446744073709551615:flip=tag",
        "rate=0:bus_drop;rate=1:mig_drop",
        "rate=0.3333333333333333:flip=delta", // needs 16 digits
        "rate=1e-300:flip=ar",
        "at=1:core_off=0;at=1:core_on=0;at=1:core_off=63",
        "rate=0.5:mig_delay=18446744073709551615",
        "seed=9;at=10:flip=ae;at=10:flip=ae", // duplicates survive
    };
    for (const char *spec : specs) {
        const FaultPlan plan = mustParse(spec);
        const FaultPlan again = mustParse(plan.toString());
        EXPECT_EQ(plan, again) << spec << " -> " << plan.toString();
        // Printing is a fixed point: parse(print(p)) prints the same.
        EXPECT_EQ(again.toString(), plan.toString());
    }
}

TEST(FaultPlan, ToStringNormalizesScheduledOrder)
{
    // Parse sorts scheduled rules by tick, so printing follows tick
    // order regardless of the spelling order.
    const FaultPlan plan =
        mustParse("at=900:flip=ae;at=100:flip=delta");
    EXPECT_EQ(plan.toString(),
              "seed=1;at=100:flip=delta;at=900:flip=ae");
}

TEST(FaultPlan, RuleToStringCoversEverySiteShape)
{
    const FaultPlan plan = mustParse(
        "at=3:flip=ae;at=4:mig_drop;at=5:mig_delay=7;at=6:bus_drop;"
        "at=7:core_off=2;at=8:core_on=3");
    ASSERT_EQ(plan.scheduled.size(), 6u);
    EXPECT_EQ(faultRuleToString(plan.scheduled[0]), "at=3:flip=ae");
    EXPECT_EQ(faultRuleToString(plan.scheduled[1]), "at=4:mig_drop");
    EXPECT_EQ(faultRuleToString(plan.scheduled[2]),
              "at=5:mig_delay=7");
    EXPECT_EQ(faultRuleToString(plan.scheduled[3]), "at=6:bus_drop");
    EXPECT_EQ(faultRuleToString(plan.scheduled[4]),
              "at=7:core_off=2");
    EXPECT_EQ(faultRuleToString(plan.scheduled[5]), "at=8:core_on=3");
}

TEST(FaultPlan, FailedParseLeavesPlanUntouched)
{
    FaultPlan plan = mustParse("seed=9;at=10:flip=ae");
    std::string error;
    EXPECT_FALSE(FaultPlan::parse("garbage", &plan, &error));
    EXPECT_EQ(plan.seed, 9u);
    ASSERT_EQ(plan.scheduled.size(), 1u);
}

TEST(FaultPlanDeathTest, ParseOrFatalDiesCleanly)
{
    EXPECT_EXIT(FaultPlan::parseOrFatal("at=5:flip=bogus"),
                ::testing::ExitedWithCode(1), "fault-plan");
}

} // namespace
} // namespace xmig
