/**
 * @file
 * Grammar and validation tests for xmig-iron fault plans.
 */

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"

namespace xmig {
namespace {

FaultPlan
mustParse(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(FaultPlan::parse(spec, &plan, &error)) << error;
    return plan;
}

std::string
mustFail(const std::string &spec)
{
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::parse(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(FaultPlan, EmptySpecIsInert)
{
    const FaultPlan plan = mustParse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ParsesTheDocExample)
{
    const FaultPlan plan = mustParse(
        "seed=7;at=500000:core_off=2;at=900000:core_on=2;"
        "rate=1e-5:flip=oe;rate=1e-6:mig_drop;rate=1e-6:bus_drop");
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.scheduled.size(), 2u);
    ASSERT_EQ(plan.rates.size(), 3u);
    EXPECT_EQ(plan.scheduled[0].site, FaultSite::CoreOff);
    EXPECT_EQ(plan.scheduled[0].at, 500'000u);
    EXPECT_EQ(plan.scheduled[0].core, 2u);
    EXPECT_EQ(plan.scheduled[1].site, FaultSite::CoreOn);
    EXPECT_DOUBLE_EQ(plan.rates[0].rate, 1e-5);
    EXPECT_EQ(plan.rates[0].site, FaultSite::OeEntry);
    EXPECT_EQ(plan.rates[1].site, FaultSite::MigDrop);
    EXPECT_EQ(plan.rates[2].site, FaultSite::BusDrop);
}

TEST(FaultPlan, ScheduledRulesSortByTick)
{
    const FaultPlan plan = mustParse(
        "at=900:flip=ae;at=100:flip=delta;at=500:flip=ar");
    ASSERT_EQ(plan.scheduled.size(), 3u);
    EXPECT_EQ(plan.scheduled[0].at, 100u);
    EXPECT_EQ(plan.scheduled[1].at, 500u);
    EXPECT_EQ(plan.scheduled[2].at, 900u);
}

TEST(FaultPlan, ParsesEveryFlipSite)
{
    const FaultPlan plan = mustParse(
        "at=1:flip=ae;at=2:flip=delta;at=3:flip=ar;at=4:flip=oe;"
        "at=5:flip=tag");
    ASSERT_EQ(plan.scheduled.size(), 5u);
    EXPECT_EQ(plan.scheduled[0].site, FaultSite::Ae);
    EXPECT_EQ(plan.scheduled[1].site, FaultSite::Delta);
    EXPECT_EQ(plan.scheduled[2].site, FaultSite::Ar);
    EXPECT_EQ(plan.scheduled[3].site, FaultSite::OeEntry);
    EXPECT_EQ(plan.scheduled[4].site, FaultSite::CacheTag);
}

TEST(FaultPlan, MigDelayCarriesItsDelay)
{
    const FaultPlan plan = mustParse("rate=0.5:mig_delay=16");
    ASSERT_EQ(plan.rates.size(), 1u);
    EXPECT_EQ(plan.rates[0].site, FaultSite::MigDelay);
    EXPECT_EQ(plan.rates[0].delay, 16u);
}

TEST(FaultPlan, TargetsReportsBothFlavors)
{
    const FaultPlan plan =
        mustParse("at=10:flip=delta;rate=1e-4:bus_drop");
    EXPECT_TRUE(plan.targets(FaultSite::Delta));
    EXPECT_TRUE(plan.targets(FaultSite::BusDrop));
    EXPECT_FALSE(plan.targets(FaultSite::Ae));
    EXPECT_FALSE(plan.targets(FaultSite::MigDrop));
}

TEST(FaultPlan, SiteNamesAreStable)
{
    EXPECT_STREQ(faultSiteName(FaultSite::Ae), "ae");
    EXPECT_STREQ(faultSiteName(FaultSite::Delta), "delta");
    EXPECT_STREQ(faultSiteName(FaultSite::Ar), "ar");
    EXPECT_STREQ(faultSiteName(FaultSite::OeEntry), "oe");
    EXPECT_STREQ(faultSiteName(FaultSite::CacheTag), "tag");
    EXPECT_STREQ(faultSiteName(FaultSite::MigDrop), "mig_drop");
    EXPECT_STREQ(faultSiteName(FaultSite::MigDelay), "mig_delay");
    EXPECT_STREQ(faultSiteName(FaultSite::BusDrop), "bus_drop");
    EXPECT_STREQ(faultSiteName(FaultSite::CoreOff), "core_off");
    EXPECT_STREQ(faultSiteName(FaultSite::CoreOn), "core_on");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    mustFail("at=:flip=ae");            // missing tick
    mustFail("at=5:flip=bogus");        // unknown flip site
    mustFail("at=5:warp_core");         // unknown event
    mustFail("rate=2.0:bus_drop");      // probability > 1
    mustFail("rate=-0.1:bus_drop");     // negative probability
    mustFail("rate=nope:bus_drop");     // non-numeric rate
    mustFail("at=5:core_off=64");       // core id out of range
    mustFail("at=5:core_off=");         // missing core id
    mustFail("at=5:mig_delay=0");       // zero delay
    mustFail("at=5:mig_drop=3");        // stray argument
    mustFail("seed=");                  // missing seed value
    mustFail("frobnicate=1");           // unknown statement
}

TEST(FaultPlan, FailedParseLeavesPlanUntouched)
{
    FaultPlan plan = mustParse("seed=9;at=10:flip=ae");
    std::string error;
    EXPECT_FALSE(FaultPlan::parse("garbage", &plan, &error));
    EXPECT_EQ(plan.seed, 9u);
    ASSERT_EQ(plan.scheduled.size(), 1u);
}

TEST(FaultPlanDeathTest, ParseOrFatalDiesCleanly)
{
    EXPECT_EXIT(FaultPlan::parseOrFatal("at=5:flip=bogus"),
                ::testing::ExitedWithCode(1), "fault-plan");
}

} // namespace
} // namespace xmig
