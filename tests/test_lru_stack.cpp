/**
 * @file
 * Unit and property tests for the Mattson LRU-stack profiler.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc.hpp"
#include "cache/lru_stack.hpp"
#include "util/rng.hpp"

namespace xmig {
namespace {

TEST(LruStack, FirstTouchIsInfinite)
{
    LruStack stack;
    EXPECT_EQ(stack.access(1), LruStack::kInfiniteDepth);
    EXPECT_EQ(stack.access(2), LruStack::kInfiniteDepth);
    EXPECT_EQ(stack.coldReferences(), 2u);
    EXPECT_EQ(stack.distinctLines(), 2u);
}

TEST(LruStack, ImmediateRepeatIsDepthOne)
{
    LruStack stack;
    stack.access(1);
    EXPECT_EQ(stack.access(1), 1u);
}

TEST(LruStack, HandComputedDepths)
{
    LruStack stack;
    stack.access(1); // inf
    stack.access(2); // inf
    stack.access(3); // inf
    EXPECT_EQ(stack.access(1), 3u); // 2 and 3 are above it
    EXPECT_EQ(stack.access(3), 2u); // 1 is above it
    EXPECT_EQ(stack.access(3), 1u);
    EXPECT_EQ(stack.access(2), 3u);
}

TEST(LruStack, HistogramAccumulates)
{
    LruStack stack;
    stack.access(1);
    stack.access(1);
    stack.access(1);
    stack.access(2);
    stack.access(1);
    ASSERT_GE(stack.histogram().size(), 2u);
    EXPECT_EQ(stack.histogram()[0], 2u); // two depth-1 accesses
    EXPECT_EQ(stack.histogram()[1], 1u); // one depth-2 access
    EXPECT_EQ(stack.references(), 5u);
}

TEST(LruStack, MissesAtSizeInclusionProperty)
{
    // Stack inclusion: misses are non-increasing in cache size.
    LruStack stack;
    Rng rng(11);
    for (int i = 0; i < 50000; ++i)
        stack.access(rng.below(2000));
    uint64_t prev = stack.missesAtSize(1);
    for (uint64_t size = 2; size <= 4096; size *= 2) {
        const uint64_t misses = stack.missesAtSize(size);
        EXPECT_LE(misses, prev);
        prev = misses;
    }
    // At and beyond the footprint only cold misses remain.
    EXPECT_EQ(stack.missesAtSize(2000), stack.coldReferences());
    EXPECT_EQ(stack.missRatioAtSize(2000),
              static_cast<double>(stack.coldReferences()) /
                  static_cast<double>(stack.references()));
}

TEST(LruStack, CompactionPreservesCorrectness)
{
    // Exceed the initial Fenwick slot count (64k) to force at least
    // one compaction, and cross-check against a reference cache.
    LruStack stack;
    FullyAssocLru cache(100);
    Rng rng(5);
    uint64_t cache_misses = 0, stack_misses_at_100 = 0;
    const int kRefs = 300'000;
    for (int i = 0; i < kRefs; ++i) {
        const uint64_t line = rng.below(500);
        const uint64_t depth = stack.access(line);
        if (depth == LruStack::kInfiniteDepth || depth > 100)
            ++stack_misses_at_100;
        if (!cache.access(line))
            ++cache_misses;
    }
    EXPECT_EQ(stack_misses_at_100, cache_misses);
    EXPECT_EQ(stack.missesAtSize(100), cache_misses);
}

/**
 * The defining Mattson property: missesAtSize(s) equals the miss
 * count of an independently simulated fully-associative LRU cache of
 * s lines — for every s, from one single-pass profile.
 */
class LruStackVsCacheTest
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LruStackVsCacheTest, SinglePassMatchesCacheSimulation)
{
    const uint64_t size = GetParam();
    LruStack stack;
    FullyAssocLru cache(size);
    Rng rng(77);
    // Mixed pattern: random + sequential sweeps.
    for (int round = 0; round < 30; ++round) {
        for (int i = 0; i < 700; ++i) {
            const uint64_t line = rng.chance(0.5)
                ? rng.below(600)
                : static_cast<uint64_t>(i);
            stack.access(line);
            cache.access(line);
        }
    }
    EXPECT_EQ(stack.missesAtSize(size), cache.stats().misses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LruStackVsCacheTest,
                         ::testing::Values(1u, 2u, 7u, 32u, 100u, 256u,
                                           555u, 1024u));

} // namespace
} // namespace xmig
