/**
 * @file
 * Unit tests for memory-reference types, line geometry and sinks.
 */

#include <gtest/gtest.h>

#include "mem/line.hpp"
#include "mem/ref.hpp"
#include "mem/trace.hpp"

namespace xmig {
namespace {

TEST(MemRef, FactoriesSetType)
{
    EXPECT_TRUE(MemRef::ifetch(0x100).isIfetch());
    EXPECT_TRUE(MemRef::load(0x100).isData());
    EXPECT_FALSE(MemRef::load(0x100).isStore());
    EXPECT_TRUE(MemRef::store(0x100).isStore());
    EXPECT_TRUE(MemRef::store(0x100).isData());
    EXPECT_FALSE(MemRef::ifetch(0x100).isData());
}

TEST(MemRef, Equality)
{
    EXPECT_EQ(MemRef::load(0x40), MemRef::load(0x40));
    EXPECT_FALSE(MemRef::load(0x40) == MemRef::store(0x40));
    EXPECT_FALSE(MemRef::load(0x40) == MemRef::load(0x80));
}

TEST(LineGeometry, SixtyFourByteLines)
{
    LineGeometry g(64);
    EXPECT_EQ(g.lineBytes(), 64u);
    EXPECT_EQ(g.lineShift(), 6u);
    EXPECT_EQ(g.lineOf(0), 0u);
    EXPECT_EQ(g.lineOf(63), 0u);
    EXPECT_EQ(g.lineOf(64), 1u);
    EXPECT_EQ(g.lineOf(0x1000), 0x40u);
    EXPECT_EQ(g.byteOf(g.lineOf(0x12345)), 0x12340u);
    EXPECT_EQ(g.linesIn(16 * 1024), 256u);
}

TEST(LineGeometry, OtherLineSizes)
{
    for (uint64_t bytes : {32u, 128u, 256u}) {
        LineGeometry g(bytes);
        EXPECT_EQ(g.lineOf(bytes), 1u);
        EXPECT_EQ(g.lineOf(bytes - 1), 0u);
        EXPECT_EQ(g.byteOf(5), 5 * bytes);
    }
}

TEST(RefRecorder, RecordsAndReplays)
{
    RefRecorder rec;
    rec.access(MemRef::load(0x40));
    rec.access(MemRef::store(0x80));
    ASSERT_EQ(rec.refs().size(), 2u);
    EXPECT_EQ(rec.refs()[0], MemRef::load(0x40));

    RefRecorder replayed;
    rec.replay(replayed);
    EXPECT_EQ(replayed.refs(), rec.refs());

    rec.clear();
    EXPECT_TRUE(rec.refs().empty());
}

TEST(TeeSink, ForwardsToBoth)
{
    RefRecorder a, b;
    TeeSink tee(a, b);
    tee.access(MemRef::ifetch(0x1000));
    EXPECT_EQ(a.refs().size(), 1u);
    EXPECT_EQ(b.refs().size(), 1u);
}

TEST(RefCounter, CountsByType)
{
    RefCounter c;
    c.access(MemRef::ifetch(0));
    c.access(MemRef::ifetch(4));
    c.access(MemRef::load(64));
    c.access(MemRef::store(128));
    EXPECT_EQ(c.ifetches(), 2u);
    EXPECT_EQ(c.loads(), 1u);
    EXPECT_EQ(c.stores(), 1u);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.instructions(), 2u);
}

TEST(NullSink, AcceptsEverything)
{
    NullSink sink;
    sink.access(MemRef::load(0x40)); // must not crash
}

} // namespace
} // namespace xmig
