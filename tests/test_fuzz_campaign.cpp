/**
 * @file
 * xmig-forge campaigns: byte-stable collation across --jobs, and the
 * find -> minimize -> repro pipeline end to end (broken oracle).
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "fuzz/campaign.hpp"
#include "sim/runner/job_pool.hpp"

using namespace xmig;

namespace {

CampaignConfig
smallCampaign(uint64_t seed, uint64_t plans)
{
    CampaignConfig config;
    config.seed = seed;
    config.plans = plans;
    config.instructions = 25'000;
    return config;
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

constexpr uint64_t kBrokenSeed = 3;

} // namespace

TEST(Campaign, SummaryIsByteIdenticalAcrossJobs)
{
    const CampaignConfig config = smallCampaign(2026, 16);
    const PropertyHarness harness;
    const std::string s1 =
        runCampaign(config, harness, JobPool(1)).summary();
    const std::string s2 =
        runCampaign(config, harness, JobPool(2)).summary();
    const std::string s4 =
        runCampaign(config, harness, JobPool(4)).summary();
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
    EXPECT_NE(s1.find("cases=16"), std::string::npos);
}

TEST(Campaign, CleanCampaignHasNoFailures)
{
    const CampaignConfig config = smallCampaign(7, 12);
    const PropertyHarness harness;
    const CampaignResult r = runCampaign(config, harness, JobPool(2));
    EXPECT_EQ(r.cases, 12u);
    EXPECT_TRUE(r.failures.empty()) << r.summary();
    EXPECT_GT(r.refs, 0u);
}

TEST(Campaign, BrokenOracleCampaignMinimizesAndWritesRepro)
{
    // kBrokenSeed samples a batch with several plans targeting both
    // core_off and bus_drop — the broken oracle's trigger.
    CampaignConfig config = smallCampaign(kBrokenSeed, 20);
    config.reproDir = ::testing::TempDir();

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const CampaignResult r = runCampaign(config, harness, JobPool(2));
    ASSERT_FALSE(r.failures.empty())
        << "seed no longer samples a core_off+bus_drop plan; pick a "
           "new kBrokenSeed";

    const CampaignFailure &f = r.failures.front();
    EXPECT_EQ(f.failure.oracle, "broken_self_test");
    EXPECT_NE(f.minimized.plan, f.original.plan);
    EXPECT_FALSE(f.reproPath.empty());

    const std::string repro = slurp(f.reproPath);
    EXPECT_NE(repro.find("plan=" + f.minimized.plan),
              std::string::npos);
    EXPECT_NE(repro.find("oracle=broken_self_test"),
              std::string::npos);
    EXPECT_NE(repro.find("workload_seed="), std::string::npos);
    EXPECT_NE(repro.find("--replay"), std::string::npos);

    // The summary names the repro and the minimized statement count.
    EXPECT_NE(r.summary().find("oracle=broken_self_test"),
              std::string::npos);
}

TEST(Campaign, MinimizationCanBeDisabled)
{
    CampaignConfig config = smallCampaign(kBrokenSeed, 20);
    config.minimize = false;

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const CampaignResult r = runCampaign(config, harness, JobPool(2));
    ASSERT_FALSE(r.failures.empty());
    EXPECT_EQ(r.failures.front().minimized.plan,
              r.failures.front().original.plan);
    EXPECT_EQ(r.failures.front().probes, 0u);
}

TEST(Campaign, ReproFilesAreDeterministic)
{
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);

    CampaignConfig config = smallCampaign(kBrokenSeed, 20);
    config.reproDir = ::testing::TempDir();
    const CampaignResult r1 = runCampaign(config, harness, JobPool(1));
    const CampaignResult r2 = runCampaign(config, harness, JobPool(4));
    ASSERT_FALSE(r1.failures.empty());
    ASSERT_EQ(r1.failures.size(), r2.failures.size());
    EXPECT_EQ(slurp(r1.failures.front().reproPath),
              slurp(r2.failures.front().reproPath));
    EXPECT_EQ(r1.summary(), r2.summary());
}
