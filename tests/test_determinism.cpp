/**
 * @file
 * Whole-pipeline determinism: every experiment must produce
 * bit-identical results across repeated runs with the same seed —
 * the property that makes configuration sweeps and regression
 * comparisons meaningful.
 */

#include <gtest/gtest.h>

#include "sim/quadcore.hpp"
#include "sim/snapshot.hpp"
#include "sim/stack_profile.hpp"
#include "sim/table1.hpp"

namespace xmig {
namespace {

TEST(Determinism, QuadcoreRunsAreIdentical)
{
    QuadcoreParams p;
    p.instructionsPerBenchmark = 1'500'000;
    const QuadcoreRow a = runQuadcore("health", p);
    const QuadcoreRow b = runQuadcore("health", p);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2MissesBaseline, b.l2MissesBaseline);
    EXPECT_EQ(a.l2Misses4x, b.l2Misses4x);
    EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Determinism, SeedChangesTheRun)
{
    QuadcoreParams p;
    p.instructionsPerBenchmark = 1'500'000;
    const QuadcoreRow a = runQuadcore("164.gzip", p);
    p.seed = 43;
    const QuadcoreRow b = runQuadcore("164.gzip", p);
    // Different seed, different stochastic stream: the exact event
    // counts should differ even though the behavior class is stable.
    EXPECT_NE(a.l1Misses, b.l1Misses);
}

TEST(Determinism, StackProfilesAreIdentical)
{
    StackProfileParams p;
    p.instructionsPerBenchmark = 1'000'000;
    const StackProfileResult a = runStackProfile("em3d", p);
    const StackProfileResult b = runStackProfile("em3d", p);
    EXPECT_EQ(a.p1, b.p1);
    EXPECT_EQ(a.p4, b.p4);
    EXPECT_EQ(a.transitions, b.transitions);
}

TEST(Determinism, Table1RowsAreIdentical)
{
    Table1Params p;
    p.instructionsPerBenchmark = 500'000;
    const Table1Row a = runTable1("175.vpr", p);
    const Table1Row b = runTable1("175.vpr", p);
    EXPECT_EQ(a.il1Misses, b.il1Misses);
    EXPECT_EQ(a.dl1Misses, b.dl1Misses);
    EXPECT_EQ(a.loads, b.loads);
}

TEST(Determinism, SnapshotsAreIdentical)
{
    SnapshotParams p;
    p.references = 200'000;
    CircularStream s1(4000), s2(4000);
    const SnapshotResult a = runAffinitySnapshot(s1, p);
    const SnapshotResult b = runAffinitySnapshot(s2, p);
    EXPECT_EQ(a.affinity, b.affinity);
    EXPECT_EQ(a.transitionFrequency, b.transitionFrequency);
}

} // namespace
} // namespace xmig
