/**
 * @file
 * Property fuzzing of the migration machine over its configuration
 * space: for every combination of core count, L2 organization,
 * controller valves, prefetcher and window kind, the invariants of
 * section 2 must hold on a mixed random/circular/strided workload.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "multicore/machine.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

using FuzzParam = std::tuple<unsigned /*cores*/, bool /*skewed*/,
                             bool /*l2filter*/, bool /*bounded*/,
                             int /*prefetch*/, bool /*lru window*/>;

class MachineFuzzTest : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(MachineFuzzTest, InvariantsHoldUnderMixedTraffic)
{
    const auto [cores, skewed, l2filter, bounded, prefetch, lru] =
        GetParam();

    MachineConfig cfg;
    cfg.numCores = cores;
    cfg.l2Bytes = 64 * 1024; // small L2s: force evictions
    cfg.l2Skewed = skewed;
    cfg.controller.l2Filtering = l2filter;
    cfg.controller.boundedStore = bounded;
    cfg.controller.affinityCache.entries = 1024;
    cfg.controller.windowX = 64;
    cfg.controller.windowY = 32;
    cfg.controller.window =
        lru ? WindowKind::DistinctLru : WindowKind::Fifo;
    cfg.prefetch.kind = static_cast<PrefetchKind>(prefetch);

    MachineConfig base_cfg = cfg;
    base_cfg.numCores = 1;
    base_cfg.prefetch.kind = PrefetchKind::None;

    MigrationMachine machine(cfg);
    MigrationMachine baseline(base_cfg);

    Rng rng(cores * 1000 + prefetch * 10 + (skewed ? 1 : 0));
    CircularStream circ(3000);
    StrideStream strided(5000, 7);
    for (uint64_t t = 0; t < 120'000; ++t) {
        uint64_t line;
        switch (rng.below(3)) {
          case 0:
            line = circ.next();
            break;
          case 1:
            line = strided.next();
            break;
          default:
            line = rng.below(6000);
        }
        const uint64_t addr = 0x40000000 + line * 64;
        MemRef ref = rng.chance(0.25) ? MemRef::store(addr)
                                      : MemRef::load(addr);
        if (rng.chance(0.1))
            ref = MemRef::pointerLoad(addr);
        machine.access(ref);
        baseline.access(ref);
        if (rng.chance(0.05)) {
            const MemRef fetch =
                MemRef::ifetch(0x400000 + rng.below(4096));
            machine.access(fetch);
            baseline.access(fetch);
        }
    }

    // Invariant: at most one modified copy of any line (section 2.1).
    EXPECT_EQ(machine.countMultiModifiedLines(), 0u);

    // Invariant: the active core is always a real core.
    EXPECT_LT(machine.activeCore(), cores);

    // Consistency: every counted L2 miss belongs to a counted access,
    // forwards are a subset of misses, and per-cache stats add up.
    const MachineStats &s = machine.stats();
    EXPECT_LE(s.l2Misses, s.l2Accesses);
    EXPECT_LE(s.l2ToL2Forwards, s.l2Misses);
    uint64_t acc = 0, hits = 0, misses = 0;
    for (unsigned c = 0; c < cores; ++c) {
        const CacheStats &cs = machine.l2(c).stats();
        EXPECT_EQ(cs.hits + cs.misses, cs.accesses);
        acc += cs.accesses;
        hits += cs.hits;
        misses += cs.misses;
    }
    EXPECT_EQ(acc, s.l2Accesses);
    EXPECT_EQ(misses, s.l2Misses);
    EXPECT_EQ(hits, s.l2Accesses - s.l2Misses);

    // Invariant: mirrored L1s make the L1-miss stream identical to
    // the baseline machine's (prefetching happens below L1).
    EXPECT_EQ(s.l1Misses, baseline.stats().l1Misses);

    // Prefetch bookkeeping can never exceed what was filled.
    EXPECT_LE(s.prefetchUseful, s.prefetchFills);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, MachineFuzzTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Bool(),          // skewed
                       ::testing::Bool(),          // l2 filtering
                       ::testing::Bool(),          // bounded store
                       ::testing::Values(0, 1, 2), // prefetch kind
                       ::testing::Bool()));        // LRU window

} // namespace
} // namespace xmig
