/**
 * @file
 * xmig-forge minimizer: ddmin unit behavior on synthetic predicates,
 * and end-to-end plan reduction against the broken test oracle.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/minimizer.hpp"

using namespace xmig;

namespace {

using Items = std::vector<std::string>;

bool
contains(const Items &items, const std::string &needle)
{
    return std::find(items.begin(), items.end(), needle) !=
           items.end();
}

FuzzCase
brokenCase()
{
    FuzzCase c;
    c.plan = "seed=9;at=12000:core_off=1;rate=0.001:flip=ae;"
             "at=6000:mig_delay=8;rate=0.0002:bus_drop;"
             "at=30000:core_on=1;rate=0.0001:mig_drop;at=1:flip=tag";
    c.instructions = 40'000;
    return c;
}

size_t
statementCount(const std::string &spec)
{
    if (spec.empty())
        return 0;
    return static_cast<size_t>(
               std::count(spec.begin(), spec.end(), ';')) + 1;
}

} // namespace

TEST(Ddmin, ReducesToSingleCulprit)
{
    Items items = {"a", "b", "c", "d", "e", "f", "g", "h"};
    uint64_t probes = 0;
    const Items reduced = ddmin(
        items,
        [](const Items &candidate) {
            return contains(candidate, "e");
        },
        1'000, probes);
    EXPECT_EQ(reduced, Items{"e"});
    EXPECT_GT(probes, 0u);
    EXPECT_LT(probes, 100u);
}

TEST(Ddmin, KeepsInteractingPair)
{
    Items items = {"a", "b", "c", "d", "e", "f", "g", "h"};
    uint64_t probes = 0;
    const Items reduced = ddmin(
        items,
        [](const Items &candidate) {
            return contains(candidate, "b") &&
                   contains(candidate, "g");
        },
        1'000, probes);
    EXPECT_EQ(reduced, (Items{"b", "g"}));
}

TEST(Ddmin, PreservesOrder)
{
    Items items = {"3", "1", "4", "1b", "5", "9", "2", "6"};
    uint64_t probes = 0;
    const Items reduced = ddmin(
        items,
        [](const Items &candidate) {
            return contains(candidate, "9") &&
                   contains(candidate, "4");
        },
        1'000, probes);
    EXPECT_EQ(reduced, (Items{"4", "9"}));
}

TEST(Ddmin, RespectsProbeBudget)
{
    Items items(64, "x");
    items.push_back("y");
    uint64_t probes = 0;
    ddmin(
        items,
        [](const Items &candidate) {
            return contains(candidate, "y");
        },
        5, probes);
    EXPECT_LE(probes, 5u);
}

TEST(Ddmin, IsDeterministic)
{
    const Items items = {"p", "q", "r", "s", "t", "u"};
    const auto fails = [](const Items &candidate) {
        return contains(candidate, "q") && contains(candidate, "t");
    };
    uint64_t probes1 = 0, probes2 = 0;
    const Items r1 = ddmin(items, fails, 1'000, probes1);
    const Items r2 = ddmin(items, fails, 1'000, probes2);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(probes1, probes2);
}

TEST(PlanMinimizer, ReducesBrokenOraclePlanToTwoStatements)
{
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const PlanMinimizer minimizer(harness);

    const MinimizeResult m =
        minimizer.minimize(brokenCase(), "broken_self_test");
    ASSERT_TRUE(m.stillFails);
    EXPECT_LE(statementCount(m.minimized.plan), 3u)
        << m.minimized.plan;
    // The broken oracle needs a core_off and a bus_drop statement;
    // everything else must be gone.
    EXPECT_NE(m.minimized.plan.find("core_off"), std::string::npos);
    EXPECT_NE(m.minimized.plan.find("bus_drop"), std::string::npos);
    EXPECT_EQ(m.minimized.plan.find("flip"), std::string::npos);
    EXPECT_EQ(m.minimized.plan.find("mig_"), std::string::npos);
}

TEST(PlanMinimizer, ShrinksTriggerValues)
{
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const PlanMinimizer minimizer(harness);

    const MinimizeResult m =
        minimizer.minimize(brokenCase(), "broken_self_test");
    ASSERT_TRUE(m.stillFails);
    // The oracle only looks at which sites the plan targets, so the
    // shrinker can take the core_off tick all the way to 0 and the
    // bus_drop rate all the way to 0.
    EXPECT_NE(m.minimized.plan.find("at=0:core_off"),
              std::string::npos)
        << m.minimized.plan;
    EXPECT_NE(m.minimized.plan.find("rate=0:bus_drop"),
              std::string::npos)
        << m.minimized.plan;
}

TEST(PlanMinimizer, MinimizationIsDeterministic)
{
    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);
    const PlanMinimizer minimizer(harness);

    const MinimizeResult m1 =
        minimizer.minimize(brokenCase(), "broken_self_test");
    const MinimizeResult m2 =
        minimizer.minimize(brokenCase(), "broken_self_test");
    EXPECT_EQ(m1.minimized.plan, m2.minimized.plan);
    EXPECT_EQ(m1.probes, m2.probes);
}

TEST(PlanMinimizer, NonReproducingFailureIsReportedNotReduced)
{
    const PropertyHarness harness; // broken oracle NOT armed
    const PlanMinimizer minimizer(harness);
    const FuzzCase c = brokenCase();
    const MinimizeResult m = minimizer.minimize(c, "broken_self_test");
    EXPECT_FALSE(m.stillFails);
    EXPECT_EQ(m.minimized.plan, c.plan) << "input returned unchanged";
    EXPECT_EQ(m.probes, 1u) << "one reproduction probe, no reduction";
}
