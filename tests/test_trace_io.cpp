/**
 * @file
 * Round-trip and robustness tests for binary trace files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mem/trace_io.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace xmig {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/xmig_trace_" + tag +
           ".bin";
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty");
    {
        TraceWriter writer(path);
        writer.close();
    }
    TraceReader reader(path);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripsMixedReferences)
{
    const std::string path = tempPath("mixed");
    RefRecorder original;
    Rng rng(12);
    for (int i = 0; i < 10'000; ++i) {
        const uint64_t addr = rng.below(1ULL << 40);
        switch (rng.below(4)) {
          case 0:
            original.access(MemRef::ifetch(addr));
            break;
          case 1:
            original.access(MemRef::load(addr));
            break;
          case 2:
            original.access(MemRef::pointerLoad(addr));
            break;
          default:
            original.access(MemRef::store(addr));
        }
    }
    {
        TraceWriter writer(path);
        original.replay(writer);
        EXPECT_EQ(writer.recordsWritten(), original.refs().size());
    }
    TraceReader reader(path);
    RefRecorder replayed;
    EXPECT_EQ(reader.replay(replayed), original.refs().size());
    EXPECT_EQ(replayed.refs(), original.refs());
    std::remove(path.c_str());
}

TEST(TraceIo, DeltaCompressionIsCompact)
{
    // A sequential workload trace should cost ~2-3 bytes per record.
    const std::string path = tempPath("compact");
    {
        TraceWriter writer(path);
        for (uint64_t i = 0; i < 50'000; ++i) {
            writer.access(MemRef::ifetch(0x400000 + i * 4));
            writer.access(MemRef::load(0x10000000 + i * 8));
        }
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    EXPECT_LT(bytes, 100'000 * 3);
    std::remove(path.c_str());
}

TEST(TraceIo, WorkloadTraceReplaysIdentically)
{
    const std::string path = tempPath("workload");
    RefRecorder direct;
    makeWorkload("health")->run(direct, 100'000);
    {
        TraceWriter writer(path);
        direct.replay(writer);
    }
    TraceReader reader(path);
    RefRecorder replayed;
    reader.replay(replayed);
    EXPECT_EQ(replayed.refs(), direct.refs());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsNonTraceFile)
{
    const std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_DEATH({ TraceReader reader(path); }, "not an xmig trace");
    std::remove(path.c_str());
}

TEST(TraceIo, DiesOnTruncatedRecord)
{
    const std::string path = tempPath("truncated");
    {
        TraceWriter writer(path);
        writer.access(MemRef::load(0x123456789abcULL));
    }
    // Chop the final varint byte off.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    std::string data(static_cast<size_t>(size), '\0');
    f = std::fopen(path.c_str(), "rb");
    ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    std::fwrite(data.data(), 1, data.size() - 1, f);
    std::fclose(f);

    TraceReader reader(path);
    MemRef ref;
    EXPECT_DEATH({
        while (reader.next(&ref)) {
        }
    }, "truncated");
    std::remove(path.c_str());
}

} // namespace
} // namespace xmig
