/**
 * @file
 * Round-trip and robustness tests for binary trace files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mem/trace_io.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace xmig {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/xmig_trace_" + tag +
           ".bin";
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty");
    {
        TraceWriter writer(path);
        writer.close();
    }
    TraceReader reader(path);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripsMixedReferences)
{
    const std::string path = tempPath("mixed");
    RefRecorder original;
    Rng rng(12);
    for (int i = 0; i < 10'000; ++i) {
        const uint64_t addr = rng.below(1ULL << 40);
        switch (rng.below(4)) {
          case 0:
            original.access(MemRef::ifetch(addr));
            break;
          case 1:
            original.access(MemRef::load(addr));
            break;
          case 2:
            original.access(MemRef::pointerLoad(addr));
            break;
          default:
            original.access(MemRef::store(addr));
        }
    }
    {
        TraceWriter writer(path);
        original.replay(writer);
        EXPECT_EQ(writer.recordsWritten(), original.refs().size());
    }
    TraceReader reader(path);
    RefRecorder replayed;
    EXPECT_EQ(reader.replay(replayed), original.refs().size());
    EXPECT_EQ(replayed.refs(), original.refs());
    std::remove(path.c_str());
}

TEST(TraceIo, DeltaCompressionIsCompact)
{
    // A sequential workload trace should cost ~2-3 bytes per record.
    const std::string path = tempPath("compact");
    {
        TraceWriter writer(path);
        for (uint64_t i = 0; i < 50'000; ++i) {
            writer.access(MemRef::ifetch(0x400000 + i * 4));
            writer.access(MemRef::load(0x10000000 + i * 8));
        }
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    EXPECT_LT(bytes, 100'000 * 3);
    std::remove(path.c_str());
}

TEST(TraceIo, WorkloadTraceReplaysIdentically)
{
    const std::string path = tempPath("workload");
    RefRecorder direct;
    makeWorkload("health")->run(direct, 100'000);
    {
        TraceWriter writer(path);
        direct.replay(writer);
    }
    TraceReader reader(path);
    RefRecorder replayed;
    reader.replay(replayed);
    EXPECT_EQ(replayed.refs(), direct.refs());
    std::remove(path.c_str());
}

std::string
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::string data(static_cast<size_t>(std::ftell(f)), '\0');
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
    return data;
}

void
writeAll(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f),
              data.size());
    std::fclose(f);
}

TEST(TraceIo, MissingFileReportsOpenFailed)
{
    TraceReader reader(std::string(::testing::TempDir()) +
                       "/xmig_trace_does_not_exist.bin");
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error, TraceIoError::OpenFailed);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
}

TEST(TraceIo, RejectsNonTraceFile)
{
    const std::string path = tempPath("garbage");
    // Same length as the magic so only the bytes are wrong.
    writeAll(path, "notatrce");
    TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error, TraceIoError::BadMagic);
    EXPECT_NE(reader.status().message.find("not an xmig trace"),
              std::string::npos);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
    std::remove(path.c_str());
}

TEST(TraceIo, ShortReadInsideMagic)
{
    const std::string path = tempPath("shortmagic");
    writeAll(path, "XMIG"); // first half of the 8-byte magic
    TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error, TraceIoError::ShortMagic);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordReportsByteOffset)
{
    const std::string path = tempPath("truncated");
    {
        TraceWriter writer(path);
        writer.access(MemRef::load(0x1000));
        writer.access(MemRef::load(0x123456789abcULL));
    }
    // Chop the final varint byte, leaving record 1 intact and
    // record 2 cut mid-varint.
    std::string data = readAll(path);
    const uint64_t truncated_size = data.size() - 1;
    writeAll(path, data.substr(0, truncated_size));

    TraceReader reader(path);
    ASSERT_TRUE(reader.ok());
    MemRef ref;
    EXPECT_TRUE(reader.next(&ref));
    EXPECT_EQ(ref.addr, 0x1000u);
    EXPECT_FALSE(reader.next(&ref));
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error, TraceIoError::TruncatedRecord);
    EXPECT_EQ(reader.status().offset, truncated_size);
    // Sticky: further reads keep failing with the first error.
    EXPECT_FALSE(reader.next(&ref));
    EXPECT_EQ(reader.status().error, TraceIoError::TruncatedRecord);
    std::remove(path.c_str());
}

TEST(TraceIo, BadRecordTypeReportsByteOffset)
{
    const std::string path = tempPath("badtype");
    {
        TraceWriter writer(path);
        writer.access(MemRef::ifetch(0x400000));
    }
    std::string data = readAll(path);
    data[8] = 0x3; // control byte: RefType 3 does not exist
    writeAll(path, data);

    TraceReader reader(path);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
    EXPECT_EQ(reader.status().error, TraceIoError::BadRecordType);
    EXPECT_EQ(reader.status().offset, 9u);
    std::remove(path.c_str());
}

TEST(TraceIo, CorruptVarintReportsError)
{
    const std::string path = tempPath("badvarint");
    // Magic + a load record whose varint never terminates.
    std::string data = "XMIGTRC1";
    data += static_cast<char>(0x01); // RefType::Load
    for (int i = 0; i < 11; ++i)
        data += static_cast<char>(0x80); // continuation forever
    writeAll(path, data);

    TraceReader reader(path);
    MemRef ref;
    EXPECT_FALSE(reader.next(&ref));
    EXPECT_EQ(reader.status().error, TraceIoError::CorruptVarint);
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayStopsAtCorruption)
{
    const std::string path = tempPath("midreplay");
    RefRecorder original;
    for (uint64_t i = 0; i < 100; ++i)
        original.access(MemRef::load(0x1000 + i * 64));
    {
        TraceWriter writer(path);
        original.replay(writer);
    }
    std::string data = readAll(path);
    writeAll(path, data.substr(0, data.size() - 1));

    TraceReader reader(path);
    RefRecorder replayed;
    EXPECT_EQ(reader.replay(replayed), 99u);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().error, TraceIoError::TruncatedRecord);
    std::remove(path.c_str());
}

TEST(TraceIo, ErrorNamesAreStable)
{
    EXPECT_STREQ(traceIoErrorName(TraceIoError::None), "none");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::OpenFailed),
                 "open_failed");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::ShortMagic),
                 "short_magic");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::BadMagic),
                 "bad_magic");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::TruncatedRecord),
                 "truncated_record");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::CorruptVarint),
                 "corrupt_varint");
    EXPECT_STREQ(traceIoErrorName(TraceIoError::BadRecordType),
                 "bad_record_type");
}

} // namespace
} // namespace xmig
