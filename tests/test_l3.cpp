/**
 * @file
 * Tests for the finite shared-L3 mode of the machine model.
 */

#include <gtest/gtest.h>

#include "multicore/machine.hpp"
#include "workloads/synthetic.hpp"

namespace xmig {
namespace {

MachineConfig
l3Machine(uint64_t l3_bytes)
{
    MachineConfig c;
    c.numCores = 1;
    c.il1Bytes = 4 * 64;
    c.dl1Bytes = 4 * 64;
    c.l1Ways = 2;
    c.l2Bytes = 16 * 64;
    c.l2Ways = 4;
    c.l2Skewed = false;
    c.l3Bytes = l3_bytes;
    c.l3Ways = 4;
    return c;
}

void
drive(MigrationMachine &m, uint64_t lines, uint64_t refs,
      bool stores = false)
{
    CircularStream s(lines);
    for (uint64_t t = 0; t < refs; ++t) {
        const uint64_t addr = 0x100000 + s.next() * 64;
        m.access(stores ? MemRef::store(addr) : MemRef::load(addr));
    }
}

TEST(FiniteL3, PerfectModeTracksNothing)
{
    MigrationMachine m(l3Machine(0));
    drive(m, 1000, 20'000);
    EXPECT_EQ(m.l3(), nullptr);
    EXPECT_EQ(m.stats().l3Accesses, 0u);
    EXPECT_EQ(m.stats().l3Misses, 0u);
}

TEST(FiniteL3, EveryUnforwardedL2MissReachesL3)
{
    MigrationMachine m(l3Machine(256 * 64));
    drive(m, 1000, 20'000);
    // Single core: no forwarding, no prefetch — L3 accesses equal
    // L2 read misses.
    EXPECT_EQ(m.stats().l3Accesses, m.stats().l2Misses);
    EXPECT_GT(m.stats().l3Misses, 0u);
    EXPECT_LE(m.stats().l3Misses, m.stats().l3Accesses);
}

TEST(FiniteL3, WorkingSetInsideL3StopsMissingAfterWarmup)
{
    // 100-line working set, 256-line L3: after the first pass the L3
    // absorbs all L2 misses.
    MigrationMachine m(l3Machine(256 * 64));
    drive(m, 100, 100);          // warm-up pass (cold misses)
    const uint64_t cold = m.stats().l3Misses;
    drive(m, 100, 20'000);
    EXPECT_EQ(m.stats().l3Misses, cold);
}

TEST(FiniteL3, WorkingSetBeyondL3KeepsMissing)
{
    MigrationMachine m(l3Machine(256 * 64));
    drive(m, 4096, 40'000); // 16x the L3: LRU-thrashes it
    EXPECT_GT(m.stats().l3Misses, m.stats().l3Accesses / 2);
}

TEST(FiniteL3, DirtyTrafficReachesMemory)
{
    MigrationMachine m(l3Machine(64 * 64));
    drive(m, 4096, 40'000, /*stores=*/true);
    EXPECT_GT(m.stats().l3Writebacks, 0u);    // L2 -> L3
    EXPECT_GT(m.stats().memoryWritebacks, 0u); // L3 -> memory
}

TEST(FiniteL3, MigrationMachineWithL3KeepsInvariants)
{
    MachineConfig c; // 4-core paper machine
    c.l3Bytes = 4 * 1024 * 1024;
    MigrationMachine m(c);
    CircularStream s(30'000);
    Rng rng(6);
    for (uint64_t t = 0; t < 400'000; ++t) {
        const uint64_t addr = 0x40000000 + s.next() * 64;
        m.access(rng.chance(0.2) ? MemRef::store(addr)
                                 : MemRef::load(addr));
    }
    EXPECT_EQ(m.countMultiModifiedLines(), 0u);
    EXPECT_GT(m.stats().l3Accesses, 0u);
    // The 1.9 MB working set fits the 4 MB L3: after warm-up the L3
    // barely misses.
    EXPECT_LT(m.stats().l3Misses, m.stats().l3Accesses / 4 + 31'000);
}

} // namespace
} // namespace xmig
