# Empty dependencies file for test_rwindow.
# This may be replaced when dependencies are built.
