file(REMOVE_RECURSE
  "CMakeFiles/test_rwindow.dir/test_rwindow.cpp.o"
  "CMakeFiles/test_rwindow.dir/test_rwindow.cpp.o.d"
  "test_rwindow"
  "test_rwindow.pdb"
  "test_rwindow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
