file(REMOVE_RECURSE
  "CMakeFiles/test_l3.dir/test_l3.cpp.o"
  "CMakeFiles/test_l3.dir/test_l3.cpp.o.d"
  "test_l3"
  "test_l3.pdb"
  "test_l3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
