# Empty compiler generated dependencies file for test_migration_controller.
# This may be replaced when dependencies are built.
