
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_migration_controller.cpp" "tests/CMakeFiles/test_migration_controller.dir/test_migration_controller.cpp.o" "gcc" "tests/CMakeFiles/test_migration_controller.dir/test_migration_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xmig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/multicore/CMakeFiles/xmig_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xmig_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xmig_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
