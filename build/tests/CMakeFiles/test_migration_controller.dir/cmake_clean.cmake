file(REMOVE_RECURSE
  "CMakeFiles/test_migration_controller.dir/test_migration_controller.cpp.o"
  "CMakeFiles/test_migration_controller.dir/test_migration_controller.cpp.o.d"
  "test_migration_controller"
  "test_migration_controller.pdb"
  "test_migration_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
