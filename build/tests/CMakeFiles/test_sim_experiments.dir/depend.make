# Empty dependencies file for test_sim_experiments.
# This may be replaced when dependencies are built.
