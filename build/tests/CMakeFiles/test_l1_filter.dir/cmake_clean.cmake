file(REMOVE_RECURSE
  "CMakeFiles/test_l1_filter.dir/test_l1_filter.cpp.o"
  "CMakeFiles/test_l1_filter.dir/test_l1_filter.cpp.o.d"
  "test_l1_filter"
  "test_l1_filter.pdb"
  "test_l1_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
