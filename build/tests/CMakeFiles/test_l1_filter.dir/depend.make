# Empty dependencies file for test_l1_filter.
# This may be replaced when dependencies are built.
