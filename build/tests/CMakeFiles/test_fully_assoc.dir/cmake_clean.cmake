file(REMOVE_RECURSE
  "CMakeFiles/test_fully_assoc.dir/test_fully_assoc.cpp.o"
  "CMakeFiles/test_fully_assoc.dir/test_fully_assoc.cpp.o.d"
  "test_fully_assoc"
  "test_fully_assoc.pdb"
  "test_fully_assoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fully_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
