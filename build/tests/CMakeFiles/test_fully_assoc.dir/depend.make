# Empty dependencies file for test_fully_assoc.
# This may be replaced when dependencies are built.
