# Empty compiler generated dependencies file for test_lru_stack.
# This may be replaced when dependencies are built.
