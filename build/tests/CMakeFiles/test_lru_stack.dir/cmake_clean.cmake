file(REMOVE_RECURSE
  "CMakeFiles/test_lru_stack.dir/test_lru_stack.cpp.o"
  "CMakeFiles/test_lru_stack.dir/test_lru_stack.cpp.o.d"
  "test_lru_stack"
  "test_lru_stack.pdb"
  "test_lru_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lru_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
