file(REMOVE_RECURSE
  "CMakeFiles/test_kway_splitter.dir/test_kway_splitter.cpp.o"
  "CMakeFiles/test_kway_splitter.dir/test_kway_splitter.cpp.o.d"
  "test_kway_splitter"
  "test_kway_splitter.pdb"
  "test_kway_splitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kway_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
