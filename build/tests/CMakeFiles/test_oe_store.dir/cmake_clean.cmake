file(REMOVE_RECURSE
  "CMakeFiles/test_oe_store.dir/test_oe_store.cpp.o"
  "CMakeFiles/test_oe_store.dir/test_oe_store.cpp.o.d"
  "test_oe_store"
  "test_oe_store.pdb"
  "test_oe_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oe_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
