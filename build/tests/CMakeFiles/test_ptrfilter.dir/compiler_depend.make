# Empty compiler generated dependencies file for test_ptrfilter.
# This may be replaced when dependencies are built.
