file(REMOVE_RECURSE
  "CMakeFiles/test_ptrfilter.dir/test_ptrfilter.cpp.o"
  "CMakeFiles/test_ptrfilter.dir/test_ptrfilter.cpp.o.d"
  "test_ptrfilter"
  "test_ptrfilter.pdb"
  "test_ptrfilter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptrfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
