file(REMOVE_RECURSE
  "CMakeFiles/test_transition_filter.dir/test_transition_filter.cpp.o"
  "CMakeFiles/test_transition_filter.dir/test_transition_filter.cpp.o.d"
  "test_transition_filter"
  "test_transition_filter.pdb"
  "test_transition_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transition_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
