# Empty dependencies file for test_transition_filter.
# This may be replaced when dependencies are built.
