file(REMOVE_RECURSE
  "../bench/bench_timing"
  "../bench/bench_timing.pdb"
  "CMakeFiles/bench_timing.dir/bench_timing.cpp.o"
  "CMakeFiles/bench_timing.dir/bench_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
