file(REMOVE_RECURSE
  "../bench/bench_ablation_mechanism"
  "../bench/bench_ablation_mechanism.pdb"
  "CMakeFiles/bench_ablation_mechanism.dir/bench_ablation_mechanism.cpp.o"
  "CMakeFiles/bench_ablation_mechanism.dir/bench_ablation_mechanism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
