file(REMOVE_RECURSE
  "../bench/bench_table2_quadcore"
  "../bench/bench_table2_quadcore.pdb"
  "CMakeFiles/bench_table2_quadcore.dir/bench_table2_quadcore.cpp.o"
  "CMakeFiles/bench_table2_quadcore.dir/bench_table2_quadcore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_quadcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
