file(REMOVE_RECURSE
  "../bench/bench_ptrfilter"
  "../bench/bench_ptrfilter.pdb"
  "CMakeFiles/bench_ptrfilter.dir/bench_ptrfilter.cpp.o"
  "CMakeFiles/bench_ptrfilter.dir/bench_ptrfilter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ptrfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
