# Empty dependencies file for bench_ptrfilter.
# This may be replaced when dependencies are built.
