file(REMOVE_RECURSE
  "../bench/bench_ablation_rwindow"
  "../bench/bench_ablation_rwindow.pdb"
  "CMakeFiles/bench_ablation_rwindow.dir/bench_ablation_rwindow.cpp.o"
  "CMakeFiles/bench_ablation_rwindow.dir/bench_ablation_rwindow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rwindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
