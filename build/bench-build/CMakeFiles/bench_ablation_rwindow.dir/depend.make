# Empty dependencies file for bench_ablation_rwindow.
# This may be replaced when dependencies are built.
