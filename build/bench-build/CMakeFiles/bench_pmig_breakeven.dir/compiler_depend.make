# Empty compiler generated dependencies file for bench_pmig_breakeven.
# This may be replaced when dependencies are built.
