file(REMOVE_RECURSE
  "../bench/bench_pmig_breakeven"
  "../bench/bench_pmig_breakeven.pdb"
  "CMakeFiles/bench_pmig_breakeven.dir/bench_pmig_breakeven.cpp.o"
  "CMakeFiles/bench_pmig_breakeven.dir/bench_pmig_breakeven.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmig_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
