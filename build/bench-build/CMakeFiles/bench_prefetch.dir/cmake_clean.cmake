file(REMOVE_RECURSE
  "../bench/bench_prefetch"
  "../bench/bench_prefetch.pdb"
  "CMakeFiles/bench_prefetch.dir/bench_prefetch.cpp.o"
  "CMakeFiles/bench_prefetch.dir/bench_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
