file(REMOVE_RECURSE
  "../bench/bench_fig4_5_profiles"
  "../bench/bench_fig4_5_profiles.pdb"
  "CMakeFiles/bench_fig4_5_profiles.dir/bench_fig4_5_profiles.cpp.o"
  "CMakeFiles/bench_fig4_5_profiles.dir/bench_fig4_5_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
