file(REMOVE_RECURSE
  "../bench/bench_updatebus"
  "../bench/bench_updatebus.pdb"
  "CMakeFiles/bench_updatebus.dir/bench_updatebus.cpp.o"
  "CMakeFiles/bench_updatebus.dir/bench_updatebus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updatebus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
