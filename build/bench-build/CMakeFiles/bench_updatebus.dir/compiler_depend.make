# Empty compiler generated dependencies file for bench_updatebus.
# This may be replaced when dependencies are built.
