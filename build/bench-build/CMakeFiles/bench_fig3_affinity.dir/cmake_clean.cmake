file(REMOVE_RECURSE
  "../bench/bench_fig3_affinity"
  "../bench/bench_fig3_affinity.pdb"
  "CMakeFiles/bench_fig3_affinity.dir/bench_fig3_affinity.cpp.o"
  "CMakeFiles/bench_fig3_affinity.dir/bench_fig3_affinity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
