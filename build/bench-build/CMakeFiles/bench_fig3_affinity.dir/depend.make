# Empty dependencies file for bench_fig3_affinity.
# This may be replaced when dependencies are built.
