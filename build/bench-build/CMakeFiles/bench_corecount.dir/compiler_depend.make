# Empty compiler generated dependencies file for bench_corecount.
# This may be replaced when dependencies are built.
