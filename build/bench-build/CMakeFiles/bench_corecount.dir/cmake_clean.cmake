file(REMOVE_RECURSE
  "../bench/bench_corecount"
  "../bench/bench_corecount.pdb"
  "CMakeFiles/bench_corecount.dir/bench_corecount.cpp.o"
  "CMakeFiles/bench_corecount.dir/bench_corecount.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
