file(REMOVE_RECURSE
  "../bench/bench_ablation_linesize"
  "../bench/bench_ablation_linesize.pdb"
  "CMakeFiles/bench_ablation_linesize.dir/bench_ablation_linesize.cpp.o"
  "CMakeFiles/bench_ablation_linesize.dir/bench_ablation_linesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
