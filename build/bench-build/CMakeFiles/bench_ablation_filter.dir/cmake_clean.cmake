file(REMOVE_RECURSE
  "../bench/bench_ablation_filter"
  "../bench/bench_ablation_filter.pdb"
  "CMakeFiles/bench_ablation_filter.dir/bench_ablation_filter.cpp.o"
  "CMakeFiles/bench_ablation_filter.dir/bench_ablation_filter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
