file(REMOVE_RECURSE
  "../bench/bench_table1_inventory"
  "../bench/bench_table1_inventory.pdb"
  "CMakeFiles/bench_table1_inventory.dir/bench_table1_inventory.cpp.o"
  "CMakeFiles/bench_table1_inventory.dir/bench_table1_inventory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
