file(REMOVE_RECURSE
  "CMakeFiles/xmig_core.dir/direct_engine.cpp.o"
  "CMakeFiles/xmig_core.dir/direct_engine.cpp.o.d"
  "CMakeFiles/xmig_core.dir/engine.cpp.o"
  "CMakeFiles/xmig_core.dir/engine.cpp.o.d"
  "CMakeFiles/xmig_core.dir/kway_splitter.cpp.o"
  "CMakeFiles/xmig_core.dir/kway_splitter.cpp.o.d"
  "CMakeFiles/xmig_core.dir/migration_controller.cpp.o"
  "CMakeFiles/xmig_core.dir/migration_controller.cpp.o.d"
  "CMakeFiles/xmig_core.dir/oe_store.cpp.o"
  "CMakeFiles/xmig_core.dir/oe_store.cpp.o.d"
  "CMakeFiles/xmig_core.dir/splitter.cpp.o"
  "CMakeFiles/xmig_core.dir/splitter.cpp.o.d"
  "libxmig_core.a"
  "libxmig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
