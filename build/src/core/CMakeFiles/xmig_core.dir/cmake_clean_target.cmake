file(REMOVE_RECURSE
  "libxmig_core.a"
)
