# Empty dependencies file for xmig_core.
# This may be replaced when dependencies are built.
