
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/direct_engine.cpp" "src/core/CMakeFiles/xmig_core.dir/direct_engine.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/direct_engine.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/xmig_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/kway_splitter.cpp" "src/core/CMakeFiles/xmig_core.dir/kway_splitter.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/kway_splitter.cpp.o.d"
  "/root/repo/src/core/migration_controller.cpp" "src/core/CMakeFiles/xmig_core.dir/migration_controller.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/migration_controller.cpp.o.d"
  "/root/repo/src/core/oe_store.cpp" "src/core/CMakeFiles/xmig_core.dir/oe_store.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/oe_store.cpp.o.d"
  "/root/repo/src/core/splitter.cpp" "src/core/CMakeFiles/xmig_core.dir/splitter.cpp.o" "gcc" "src/core/CMakeFiles/xmig_core.dir/splitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xmig_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
