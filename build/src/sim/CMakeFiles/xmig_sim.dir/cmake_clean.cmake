file(REMOVE_RECURSE
  "CMakeFiles/xmig_sim.dir/quadcore.cpp.o"
  "CMakeFiles/xmig_sim.dir/quadcore.cpp.o.d"
  "CMakeFiles/xmig_sim.dir/snapshot.cpp.o"
  "CMakeFiles/xmig_sim.dir/snapshot.cpp.o.d"
  "CMakeFiles/xmig_sim.dir/stack_profile.cpp.o"
  "CMakeFiles/xmig_sim.dir/stack_profile.cpp.o.d"
  "CMakeFiles/xmig_sim.dir/table1.cpp.o"
  "CMakeFiles/xmig_sim.dir/table1.cpp.o.d"
  "libxmig_sim.a"
  "libxmig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
