
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/quadcore.cpp" "src/sim/CMakeFiles/xmig_sim.dir/quadcore.cpp.o" "gcc" "src/sim/CMakeFiles/xmig_sim.dir/quadcore.cpp.o.d"
  "/root/repo/src/sim/snapshot.cpp" "src/sim/CMakeFiles/xmig_sim.dir/snapshot.cpp.o" "gcc" "src/sim/CMakeFiles/xmig_sim.dir/snapshot.cpp.o.d"
  "/root/repo/src/sim/stack_profile.cpp" "src/sim/CMakeFiles/xmig_sim.dir/stack_profile.cpp.o" "gcc" "src/sim/CMakeFiles/xmig_sim.dir/stack_profile.cpp.o.d"
  "/root/repo/src/sim/table1.cpp" "src/sim/CMakeFiles/xmig_sim.dir/table1.cpp.o" "gcc" "src/sim/CMakeFiles/xmig_sim.dir/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xmig_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/multicore/CMakeFiles/xmig_multicore.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xmig_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
