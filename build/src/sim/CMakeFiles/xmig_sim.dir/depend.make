# Empty dependencies file for xmig_sim.
# This may be replaced when dependencies are built.
