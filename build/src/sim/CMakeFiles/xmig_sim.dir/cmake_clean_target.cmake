file(REMOVE_RECURSE
  "libxmig_sim.a"
)
