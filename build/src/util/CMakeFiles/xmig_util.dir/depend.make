# Empty dependencies file for xmig_util.
# This may be replaced when dependencies are built.
