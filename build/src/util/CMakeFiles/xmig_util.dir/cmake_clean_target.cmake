file(REMOVE_RECURSE
  "libxmig_util.a"
)
