file(REMOVE_RECURSE
  "CMakeFiles/xmig_util.dir/hashing.cpp.o"
  "CMakeFiles/xmig_util.dir/hashing.cpp.o.d"
  "CMakeFiles/xmig_util.dir/logging.cpp.o"
  "CMakeFiles/xmig_util.dir/logging.cpp.o.d"
  "CMakeFiles/xmig_util.dir/stats.cpp.o"
  "CMakeFiles/xmig_util.dir/stats.cpp.o.d"
  "libxmig_util.a"
  "libxmig_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
