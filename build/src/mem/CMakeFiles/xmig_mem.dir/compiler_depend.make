# Empty compiler generated dependencies file for xmig_mem.
# This may be replaced when dependencies are built.
