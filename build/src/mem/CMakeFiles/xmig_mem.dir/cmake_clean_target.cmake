file(REMOVE_RECURSE
  "libxmig_mem.a"
)
