file(REMOVE_RECURSE
  "CMakeFiles/xmig_mem.dir/trace_io.cpp.o"
  "CMakeFiles/xmig_mem.dir/trace_io.cpp.o.d"
  "libxmig_mem.a"
  "libxmig_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
