# Empty compiler generated dependencies file for xmig_workloads.
# This may be replaced when dependencies are built.
