file(REMOVE_RECURSE
  "CMakeFiles/xmig_workloads.dir/code_walker.cpp.o"
  "CMakeFiles/xmig_workloads.dir/code_walker.cpp.o.d"
  "CMakeFiles/xmig_workloads.dir/olden.cpp.o"
  "CMakeFiles/xmig_workloads.dir/olden.cpp.o.d"
  "CMakeFiles/xmig_workloads.dir/registry.cpp.o"
  "CMakeFiles/xmig_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/xmig_workloads.dir/spec_fp.cpp.o"
  "CMakeFiles/xmig_workloads.dir/spec_fp.cpp.o.d"
  "CMakeFiles/xmig_workloads.dir/spec_int_a.cpp.o"
  "CMakeFiles/xmig_workloads.dir/spec_int_a.cpp.o.d"
  "CMakeFiles/xmig_workloads.dir/spec_int_b.cpp.o"
  "CMakeFiles/xmig_workloads.dir/spec_int_b.cpp.o.d"
  "libxmig_workloads.a"
  "libxmig_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
