
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/code_walker.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/code_walker.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/code_walker.cpp.o.d"
  "/root/repo/src/workloads/olden.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/olden.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/olden.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/spec_fp.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_fp.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_fp.cpp.o.d"
  "/root/repo/src/workloads/spec_int_a.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_int_a.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_int_a.cpp.o.d"
  "/root/repo/src/workloads/spec_int_b.cpp" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_int_b.cpp.o" "gcc" "src/workloads/CMakeFiles/xmig_workloads.dir/spec_int_b.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
