file(REMOVE_RECURSE
  "libxmig_workloads.a"
)
