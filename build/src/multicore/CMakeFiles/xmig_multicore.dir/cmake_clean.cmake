file(REMOVE_RECURSE
  "CMakeFiles/xmig_multicore.dir/machine.cpp.o"
  "CMakeFiles/xmig_multicore.dir/machine.cpp.o.d"
  "CMakeFiles/xmig_multicore.dir/timing.cpp.o"
  "CMakeFiles/xmig_multicore.dir/timing.cpp.o.d"
  "libxmig_multicore.a"
  "libxmig_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
