
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicore/machine.cpp" "src/multicore/CMakeFiles/xmig_multicore.dir/machine.cpp.o" "gcc" "src/multicore/CMakeFiles/xmig_multicore.dir/machine.cpp.o.d"
  "/root/repo/src/multicore/timing.cpp" "src/multicore/CMakeFiles/xmig_multicore.dir/timing.cpp.o" "gcc" "src/multicore/CMakeFiles/xmig_multicore.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xmig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/xmig_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
