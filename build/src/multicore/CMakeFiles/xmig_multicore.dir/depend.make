# Empty dependencies file for xmig_multicore.
# This may be replaced when dependencies are built.
