file(REMOVE_RECURSE
  "libxmig_multicore.a"
)
