file(REMOVE_RECURSE
  "CMakeFiles/xmig_cache.dir/cache.cpp.o"
  "CMakeFiles/xmig_cache.dir/cache.cpp.o.d"
  "CMakeFiles/xmig_cache.dir/l1_filter.cpp.o"
  "CMakeFiles/xmig_cache.dir/l1_filter.cpp.o.d"
  "CMakeFiles/xmig_cache.dir/lru_stack.cpp.o"
  "CMakeFiles/xmig_cache.dir/lru_stack.cpp.o.d"
  "CMakeFiles/xmig_cache.dir/prefetcher.cpp.o"
  "CMakeFiles/xmig_cache.dir/prefetcher.cpp.o.d"
  "CMakeFiles/xmig_cache.dir/tags.cpp.o"
  "CMakeFiles/xmig_cache.dir/tags.cpp.o.d"
  "libxmig_cache.a"
  "libxmig_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmig_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
