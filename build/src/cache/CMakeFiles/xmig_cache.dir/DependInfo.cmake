
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/cache/CMakeFiles/xmig_cache.dir/cache.cpp.o" "gcc" "src/cache/CMakeFiles/xmig_cache.dir/cache.cpp.o.d"
  "/root/repo/src/cache/l1_filter.cpp" "src/cache/CMakeFiles/xmig_cache.dir/l1_filter.cpp.o" "gcc" "src/cache/CMakeFiles/xmig_cache.dir/l1_filter.cpp.o.d"
  "/root/repo/src/cache/lru_stack.cpp" "src/cache/CMakeFiles/xmig_cache.dir/lru_stack.cpp.o" "gcc" "src/cache/CMakeFiles/xmig_cache.dir/lru_stack.cpp.o.d"
  "/root/repo/src/cache/prefetcher.cpp" "src/cache/CMakeFiles/xmig_cache.dir/prefetcher.cpp.o" "gcc" "src/cache/CMakeFiles/xmig_cache.dir/prefetcher.cpp.o.d"
  "/root/repo/src/cache/tags.cpp" "src/cache/CMakeFiles/xmig_cache.dir/tags.cpp.o" "gcc" "src/cache/CMakeFiles/xmig_cache.dir/tags.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/xmig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xmig_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
