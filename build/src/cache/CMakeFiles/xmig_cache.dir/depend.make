# Empty dependencies file for xmig_cache.
# This may be replaced when dependencies are built.
