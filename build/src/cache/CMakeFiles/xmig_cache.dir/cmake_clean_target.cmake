file(REMOVE_RECURSE
  "libxmig_cache.a"
)
