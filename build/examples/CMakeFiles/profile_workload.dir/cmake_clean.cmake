file(REMOVE_RECURSE
  "CMakeFiles/profile_workload.dir/profile_workload.cpp.o"
  "CMakeFiles/profile_workload.dir/profile_workload.cpp.o.d"
  "profile_workload"
  "profile_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
