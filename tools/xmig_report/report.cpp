#include "report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace xmig::report {

namespace {

// ----- minimal JSON DOM ------------------------------------------------
//
// The exporters emit JSON by concatenation (obs/json.hpp); the report
// side needs the inverse. This is a deliberately small recursive-
// descent parser building a value tree — cold tool code, clarity over
// speed.

struct JValue
{
    enum class Kind { Null, Bool, Number, String, Object, Array };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::pair<std::string, JValue>> object;
    std::vector<JValue> array;

    const JValue *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    double
    numberAt(const std::string &key, double fallback = 0.0) const
    {
        const JValue *v = get(key);
        return v != nullptr && v->kind == Kind::Number ? v->number
                                                       : fallback;
    }

    std::string
    stringAt(const std::string &key) const
    {
        const JValue *v = get(key);
        return v != nullptr && v->kind == Kind::String ? v->string
                                                       : std::string();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JValue *out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value(JValue *out)
    {
        if (depth_ > 64 || pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out->kind = JValue::Kind::String;
            return string(&out->string);
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return number(out);
        if (literal("true")) {
            out->kind = JValue::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (literal("false")) {
            out->kind = JValue::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (literal("null")) {
            out->kind = JValue::Kind::Null;
            return true;
        }
        return false;
    }

    bool
    object(JValue *out)
    {
        out->kind = JValue::Kind::Object;
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (peek() != '"' || !string(&key))
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            JValue v;
            if (!value(&v))
                return false;
            out->object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array(JValue *out)
    {
        out->kind = JValue::Kind::Array;
        ++depth_;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            JValue v;
            if (!value(&v))
                return false;
            out->array.push_back(std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return false;
                const char e = s_[pos_ + 1];
                switch (e) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                    // The emitters only \u-escape control bytes; keep
                    // the low byte and move on.
                    if (pos_ + 5 >= s_.size())
                        return false;
                    unsigned code = 0;
                    for (size_t i = pos_ + 2; i < pos_ + 6; ++i) {
                        const char h = s_[i];
                        unsigned digit;
                        if (h >= '0' && h <= '9')
                            digit = static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            digit = static_cast<unsigned>(h - 'a') + 10;
                        else if (h >= 'A' && h <= 'F')
                            digit = static_cast<unsigned>(h - 'A') + 10;
                        else
                            return false;
                        code = code * 16 + digit;
                    }
                    *out += static_cast<char>(code & 0xff);
                    pos_ += 6;
                    continue;
                  }
                  default:
                    return false;
                }
                pos_ += 2;
                continue;
            }
            *out += c;
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number(JValue *out)
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        out->kind = JValue::Kind::Number;
        out->number = std::strtod(s_.substr(start, pos_ - start).c_str(),
                                  nullptr);
        return true;
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    const std::string &s_;
    size_t pos_ = 0;
    int depth_ = 0;
};

bool
parseJson(const std::string &text, JValue *out)
{
    return JsonParser(text).parse(out);
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        if (end > start)
            lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

std::string
fmt(const char *pattern, ...)
{
    char buf[512];
    va_list args;
    va_start(args, pattern);
    std::vsnprintf(buf, sizeof(buf), pattern, args);
    va_end(args);
    return buf;
}

} // namespace

const char *
inputKindName(InputKind kind)
{
    switch (kind) {
      case InputKind::Bench: return "bench";
      case InputKind::Metrics: return "metrics";
      case InputKind::Journal: return "journal";
      case InputKind::Samples: return "samples";
      case InputKind::Unknown: break;
    }
    return "unknown";
}

InputKind
detectInput(const std::string &text)
{
    size_t i = 0;
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r'))
        ++i;
    if (i >= text.size())
        return InputKind::Unknown;
    const size_t eol = std::min(text.find('\n', i), text.size());
    const std::string head = text.substr(i, eol - i);
    if (head.rfind("t,interval,", 0) == 0)
        return InputKind::Samples;
    if (text[i] != '{')
        return InputKind::Unknown;
    if (head.find("\"journal\"") != std::string::npos)
        return InputKind::Journal;
    if (head.find("\"name\"") != std::string::npos)
        return InputKind::Metrics;
    // A bench baseline is one pretty-printed document; sniff the
    // whole text for its tag rather than the first line.
    if (text.find("\"bench\"") != std::string::npos)
        return InputKind::Bench;
    return InputKind::Unknown;
}

double
ReportEvent::arg(const std::string &name, double fallback) const
{
    for (const auto &[k, v] : args) {
        if (k == name)
            return v;
    }
    return fallback;
}

JournalDoc
parseJournal(const std::string &text)
{
    JournalDoc doc;
    const std::vector<std::string> lines = splitLines(text);
    if (lines.empty()) {
        doc.error = "empty journal";
        return doc;
    }
    JValue header;
    if (!parseJson(lines[0], &header) ||
        header.stringAt("journal") != "xmig-lens") {
        doc.error = "missing xmig-lens journal header";
        return doc;
    }
    doc.capacity = static_cast<uint64_t>(header.numberAt("capacity"));
    doc.recorded = static_cast<uint64_t>(header.numberAt("recorded"));
    doc.dropped = static_cast<uint64_t>(header.numberAt("dropped"));
    for (size_t i = 1; i < lines.size(); ++i) {
        JValue v;
        if (!parseJson(lines[i], &v)) {
            doc.error = fmt("line %zu: malformed JSON", i + 1);
            return doc;
        }
        if (v.get("incident") != nullptr) {
            doc.incident = v.stringAt("incident");
            continue;
        }
        ReportEvent event;
        event.seq = static_cast<uint64_t>(v.numberAt("seq"));
        event.t = static_cast<uint64_t>(v.numberAt("t"));
        event.kind = v.stringAt("kind");
        event.cause = v.stringAt("cause");
        for (const auto &[k, val] : v.object) {
            if (k == "seq" || k == "t" || k == "kind" || k == "cause")
                continue;
            if (val.kind == JValue::Kind::Number)
                event.args.emplace_back(k, val.number);
        }
        doc.events.push_back(std::move(event));
    }
    doc.ok = true;
    return doc;
}

const MetricRow *
MetricsDoc::find(const std::string &name) const
{
    for (const MetricRow &row : rows) {
        if (row.name == name)
            return &row;
    }
    return nullptr;
}

MetricsDoc
parseMetrics(const std::string &text)
{
    MetricsDoc doc;
    for (const std::string &line : splitLines(text)) {
        JValue v;
        if (!parseJson(line, &v) || v.get("name") == nullptr) {
            doc.error = "malformed metrics line: " + line;
            return doc;
        }
        MetricRow row;
        row.name = v.stringAt("name");
        row.kind = v.stringAt("kind");
        row.value = v.numberAt("value");
        if (v.get("p50") != nullptr) {
            row.hasPercentiles = true;
            row.p50 = v.numberAt("p50");
            row.p95 = v.numberAt("p95");
            row.p99 = v.numberAt("p99");
            row.p999 = v.numberAt("p999");
        }
        doc.rows.push_back(std::move(row));
    }
    doc.ok = !doc.rows.empty();
    if (!doc.ok && doc.error.empty())
        doc.error = "empty metrics dump";
    return doc;
}

BenchDoc
parseBench(const std::string &text)
{
    BenchDoc doc;
    JValue v;
    if (!parseJson(text, &v) || v.kind != JValue::Kind::Object) {
        doc.error = "not a JSON object";
        return doc;
    }
    doc.bench = v.stringAt("bench");
    doc.compiler = v.stringAt("compiler");
    doc.hostCores = v.numberAt("host_cores");
    for (const auto &[key, val] : v.object) {
        if (val.kind == JValue::Kind::Number) {
            doc.numbers[key] = val.number;
        } else if (val.kind == JValue::Kind::Object) {
            for (const auto &[sub, subval] : val.object) {
                if (subval.kind == JValue::Kind::Number)
                    doc.numbers[key + "." + sub] = subval.number;
            }
        }
    }
    doc.ok = !doc.bench.empty();
    if (!doc.ok)
        doc.error = "missing \"bench\" tag";
    return doc;
}

// ----- reports ---------------------------------------------------------

namespace {

std::string
renderJournalSection(const std::string &text)
{
    const JournalDoc doc = parseJournal(text);
    if (!doc.ok)
        return "journal: error: " + doc.error + "\n";
    std::string out = fmt(
        "journal: %zu event(s) (recorded %llu, dropped %llu, "
        "capacity %llu)\n",
        doc.events.size(), (unsigned long long)doc.recorded,
        (unsigned long long)doc.dropped,
        (unsigned long long)doc.capacity);
    if (!doc.incident.empty())
        out += "  INCIDENT DUMP: " + doc.incident + "\n";
    if (!doc.events.empty()) {
        out += fmt("  time range: t=%llu .. t=%llu\n",
                   (unsigned long long)doc.events.front().t,
                   (unsigned long long)doc.events.back().t);
    }
    // Per-(kind, cause) breakdown, in first-seen order.
    std::vector<std::pair<std::string, uint64_t>> counts;
    for (const ReportEvent &e : doc.events) {
        const std::string key = e.kind + " / " + e.cause;
        auto it = std::find_if(counts.begin(), counts.end(),
                               [&](const auto &p) {
                                   return p.first == key;
                               });
        if (it == counts.end())
            counts.emplace_back(key, 1);
        else
            ++it->second;
    }
    for (const auto &[key, n] : counts)
        out += fmt("  %8llu  %s\n", (unsigned long long)n, key.c_str());
    return out;
}

std::string
renderEventLine(const ReportEvent &e)
{
    std::string out = fmt("  t=%-10llu seq=%-6llu %-18s %-15s",
                          (unsigned long long)e.t,
                          (unsigned long long)e.seq, e.kind.c_str(),
                          e.cause.c_str());
    for (const auto &[k, v] : e.args)
        out += fmt(" %s=%lld", k.c_str(), (long long)v);
    out += "\n";
    return out;
}

std::string
renderMetricsSection(const std::string &text)
{
    const MetricsDoc doc = parseMetrics(text);
    if (!doc.ok)
        return "metrics: error: " + doc.error + "\n";
    std::string out =
        fmt("metrics: %zu row(s)\n", doc.rows.size());
    for (const char *name :
         {"machine.refs", "machine.migrations", "machine.l2_misses",
          "machine.controller.recovery.resplits",
          "machine.controller.recovery.live_cores"}) {
        if (const MetricRow *row = doc.find(name))
            out += fmt("  %-45s %.0f\n", name, row->value);
    }
    bool header = false;
    for (const MetricRow &row : doc.rows) {
        if (!row.hasPercentiles)
            continue;
        if (!header) {
            out += fmt("  %-45s %10s %10s %10s %10s %10s\n",
                       "histogram", "count", "p50", "p95", "p99",
                       "p999");
            header = true;
        }
        out += fmt("  %-45s %10.0f %10.1f %10.1f %10.1f %10.1f\n",
                   row.name.c_str(), row.value, row.p50, row.p95,
                   row.p99, row.p999);
    }
    return out;
}

std::string
renderSamplesSection(const std::string &text)
{
    const std::vector<std::string> lines = splitLines(text);
    if (lines.empty())
        return "samples: error: empty CSV\n";
    size_t columns = 1;
    for (const char c : lines[0])
        columns += c == ',' ? 1 : 0;
    return fmt("samples: %zu row(s) x %zu column(s)\n",
               lines.size() - 1, columns);
}

} // namespace

std::string
renderReport(const std::string &journalText,
             const std::string &metricsText,
             const std::string &samplesText)
{
    std::string out = "xmig-lens run report\n";
    if (!journalText.empty())
        out += renderJournalSection(journalText);
    if (!metricsText.empty())
        out += renderMetricsSection(metricsText);
    if (!samplesText.empty())
        out += renderSamplesSection(samplesText);
    if (journalText.empty() && metricsText.empty() &&
        samplesText.empty())
        out += "  (no inputs)\n";
    return out;
}

std::string
renderExplain(const JournalDoc &doc, uint64_t n)
{
    if (!doc.ok)
        return "error: " + doc.error + "\n";
    // Locate migration n by its own payload ("n" is the machine's
    // running migration count at completion), not by array position:
    // a wrapped ring may have dropped earlier migrations.
    size_t at = doc.events.size();
    for (size_t i = 0; i < doc.events.size(); ++i) {
        const ReportEvent &e = doc.events[i];
        if (e.kind == "migration" &&
            static_cast<uint64_t>(e.arg("n")) == n) {
            at = i;
            break;
        }
    }
    if (at == doc.events.size()) {
        return fmt("error: migration %llu is not in the journal "
                   "(ring kept %zu event(s), dropped %llu)\n",
                   (unsigned long long)n, doc.events.size(),
                   (unsigned long long)doc.dropped);
    }
    // The causal window opens after the previous migration.
    size_t start = 0;
    for (size_t i = at; i-- > 0;) {
        if (doc.events[i].kind == "migration") {
            start = i + 1;
            break;
        }
    }
    const ReportEvent &m = doc.events[at];
    std::string out = fmt(
        "migration %llu: core %lld -> %lld at t=%llu (%s)\n",
        (unsigned long long)n, (long long)m.arg("from"),
        (long long)m.arg("to"), (unsigned long long)m.t,
        m.cause.c_str());
    out += fmt("  decision state: A_R=%lld filter=%lld\n",
               (long long)m.arg("ar"), (long long)m.arg("filter"));
    out += fmt("causal chain (%zu event(s) since migration %llu):\n",
               at - start + 1, (unsigned long long)(n - 1));
    for (size_t i = start; i <= at; ++i)
        out += renderEventLine(doc.events[i]);
    return out;
}

// ----- diff + gate -----------------------------------------------------

GateSpec
parseGate(const std::string &text)
{
    GateSpec gate;
    JValue v;
    if (!parseJson(text, &v) || v.kind != JValue::Kind::Object) {
        gate.error = "gate file is not a JSON object";
        return gate;
    }
    if (const JValue *host = v.get("require_same_host"))
        gate.requireSameHost = host->kind == JValue::Kind::Bool &&
                               host->boolean;
    if (const JValue *bounds = v.get("max_regress_frac")) {
        for (const auto &[key, val] : bounds->object) {
            if (val.kind == JValue::Kind::Number)
                gate.maxRegressFrac[key] = val.number;
        }
    }
    gate.ok = true;
    return gate;
}

namespace {

void
diffNumberMaps(const std::map<std::string, double> &a,
               const std::map<std::string, double> &b,
               DiffResult *out)
{
    for (const auto &[key, va] : a) {
        const auto it = b.find(key);
        if (it == b.end()) {
            out->notes.push_back("only in A: " + key);
            continue;
        }
        if (va != it->second)
            out->deltas.push_back({key, va, it->second});
    }
    for (const auto &[key, vb] : b) {
        (void)vb;
        if (a.find(key) == a.end())
            out->notes.push_back("only in B: " + key);
    }
}

std::string
eventBrief(const ReportEvent &e)
{
    return fmt("%s/%s@t=%llu", e.kind.c_str(), e.cause.c_str(),
               (unsigned long long)e.t);
}

void
diffJournals(const std::string &ta, const std::string &tb,
             DiffResult *out)
{
    const JournalDoc a = parseJournal(ta);
    const JournalDoc b = parseJournal(tb);
    if (!a.ok || !b.ok) {
        out->error = "journal parse: " + (a.ok ? b.error : a.error);
        return;
    }
    out->ok = true;
    // Per-kind counts: the causal shape of the run.
    std::map<std::string, double> ca, cb;
    for (const ReportEvent &e : a.events)
        ++ca["count." + e.kind + "." + e.cause];
    for (const ReportEvent &e : b.events)
        ++cb["count." + e.kind + "." + e.cause];
    ca["recorded"] = static_cast<double>(a.recorded);
    cb["recorded"] = static_cast<double>(b.recorded);
    diffNumberMaps(ca, cb, out);
    // First divergent event, by position in the surviving window.
    const size_t n = std::min(a.events.size(), b.events.size());
    for (size_t i = 0; i < n; ++i) {
        const ReportEvent &ea = a.events[i];
        const ReportEvent &eb = b.events[i];
        if (ea.kind != eb.kind || ea.cause != eb.cause ||
            ea.t != eb.t || ea.args != eb.args) {
            out->notes.push_back(
                fmt("first divergence at event %zu: A=%s B=%s", i,
                    eventBrief(ea).c_str(), eventBrief(eb).c_str()));
            break;
        }
    }
}

/**
 * The verbatim `"key": value` fragment of `text` — shown on a
 * host-metadata refusal so the user sees exactly what the two files
 * said instead of having to open them. Works for pretty-printed and
 * single-line JSON alike: from the key's opening quote to the next
 * comma, closing brace, or newline.
 */
std::string
rawFragmentFor(const std::string &text, const std::string &key)
{
    const std::string quoted = "\"" + key + "\"";
    const size_t at = text.find(quoted);
    if (at == std::string::npos)
        return "(no " + quoted + " entry)";
    size_t end = text.find_first_of(",}\n", at);
    end = end == std::string::npos ? text.size() : end;
    while (end > at &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(at, end - at);
}

void
diffBench(const std::string &ta, const std::string &tb,
          const GateSpec &gate, DiffResult *out)
{
    const BenchDoc a = parseBench(ta);
    const BenchDoc b = parseBench(tb);
    if (!a.ok || !b.ok) {
        out->error = "bench parse: " + (a.ok ? b.error : a.error);
        return;
    }
    out->ok = true;
    if (gate.requireSameHost &&
        (a.hostCores != b.hostCores || a.compiler != b.compiler)) {
        out->refused = true;
        // Name the first differing key outright: "host metadata
        // differs" alone sends the user diffing two JSON files by
        // hand to learn it was host_cores all along.
        const char *firstKey = a.hostCores != b.hostCores
                                   ? "host_cores"
                                   : "compiler";
        out->refusal = fmt(
            "host metadata differs (first mismatched key: %s): "
            "A={cores %.0f, %s} vs "
            "B={cores %.0f, %s} — wall-clock and ns/ref numbers do "
            "not compare across hosts",
            firstKey,
            a.hostCores,
            a.compiler.empty() ? "unknown compiler"
                               : a.compiler.c_str(),
            b.hostCores,
            b.compiler.empty() ? "unknown compiler"
                               : b.compiler.c_str());
        for (const char *key : {"host_cores", "compiler"}) {
            out->notes.push_back(
                fmt("  A: %s", rawFragmentFor(ta, key).c_str()));
            out->notes.push_back(
                fmt("  B: %s", rawFragmentFor(tb, key).c_str()));
        }
        return;
    }
    diffNumberMaps(a.numbers, b.numbers, out);
    for (const auto &[key, bound] : gate.maxRegressFrac) {
        const auto ia = a.numbers.find(key);
        const auto ib = b.numbers.find(key);
        if (ia == a.numbers.end() || ib == b.numbers.end()) {
            out->notes.push_back("gate key missing from inputs: " +
                                 key);
            out->gateFailed = true;
            continue;
        }
        if (ia->second <= 0.0)
            continue; // no meaningful baseline
        const double frac = (ib->second - ia->second) / ia->second;
        if (frac > bound) {
            out->gateFailed = true;
            out->notes.push_back(
                fmt("GATE FAIL %s: %.2f -> %.2f (%+.1f%% > %+.1f%% "
                    "allowed)",
                    key.c_str(), ia->second, ib->second, frac * 100.0,
                    bound * 100.0));
        } else {
            out->notes.push_back(
                fmt("gate ok %s: %.2f -> %.2f (%+.1f%% <= %+.1f%%)",
                    key.c_str(), ia->second, ib->second, frac * 100.0,
                    bound * 100.0));
        }
    }
}

void
diffMetrics(const std::string &ta, const std::string &tb,
            DiffResult *out)
{
    const MetricsDoc a = parseMetrics(ta);
    const MetricsDoc b = parseMetrics(tb);
    if (!a.ok || !b.ok) {
        out->error = "metrics parse: " + (a.ok ? b.error : a.error);
        return;
    }
    out->ok = true;
    std::map<std::string, double> ma, mb;
    for (const MetricRow &r : a.rows)
        ma[r.name] = r.value;
    for (const MetricRow &r : b.rows)
        mb[r.name] = r.value;
    diffNumberMaps(ma, mb, out);
}

} // namespace

std::string
DiffResult::render() const
{
    if (!error.empty())
        return "error: " + error + "\n";
    std::string out =
        fmt("diff (%s): %zu delta(s)\n", inputKindName(kind),
            deltas.size());
    for (const Delta &d : deltas)
        out += fmt("  %-45s %.4g -> %.4g\n", d.key.c_str(), d.a, d.b);
    for (const std::string &note : notes)
        out += "  " + note + "\n";
    if (refused)
        out += "verdict: REFUSED — " + refusal + "\n";
    else if (gateFailed)
        out += "verdict: FAIL\n";
    else
        out += "verdict: PASS\n";
    return out;
}

DiffResult
diffTexts(const std::string &a, const std::string &b,
          const std::string &gateText)
{
    DiffResult out;
    const InputKind ka = detectInput(a);
    const InputKind kb = detectInput(b);
    if (ka != kb) {
        out.error = fmt("inputs are different kinds: %s vs %s",
                        inputKindName(ka), inputKindName(kb));
        return out;
    }
    out.kind = ka;
    GateSpec gate;
    if (!gateText.empty()) {
        gate = parseGate(gateText);
        if (!gate.ok) {
            out.error = gate.error;
            return out;
        }
    }
    switch (ka) {
      case InputKind::Bench:
        diffBench(a, b, gate, &out);
        break;
      case InputKind::Journal:
        diffJournals(a, b, &out);
        break;
      case InputKind::Metrics:
        diffMetrics(a, b, &out);
        break;
      case InputKind::Samples:
      case InputKind::Unknown:
        out.error = "cannot diff inputs of kind " +
                    std::string(inputKindName(ka));
        return out;
    }
    // A gate on a non-bench diff degrades to "fail on any delta":
    // the self-diff CI step leans on this for journals and metrics.
    if (!gateText.empty() && out.ok && ka != InputKind::Bench &&
        !out.deltas.empty())
        out.gateFailed = true;
    return out;
}

} // namespace xmig::report
