/**
 * @file
 * xmig-lens run reports: joins the per-run artifacts (event journal
 * JSONL, metrics JSONL, time-series CSV, BENCH_swift.json) into
 * human-readable reports, causal explanations and A/B regression
 * verdicts.
 *
 * The library is UI-free string-to-string transforms so
 * tests/test_report.cpp can drive it on in-memory fixtures; the CLI
 * (main.cpp) wraps it with file I/O and exit-code policy:
 *
 *   xmig_report report  [--journal J] [--metrics M] [--samples S]
 *   xmig_report explain N --journal J
 *   xmig_report diff A B [--gate G]     (also: xmig_report --diff A B)
 *
 * diff auto-detects what A and B are — a bench baseline
 * (BENCH_swift.json), a metrics JSONL dump, or an event journal — and
 * compares accordingly. With --gate, numeric regressions beyond the
 * gate's per-metric thresholds fail the diff, and host-metadata
 * mismatches (core count, compiler) *refuse* the comparison instead
 * of producing an apples-to-oranges verdict.
 *
 * Exit codes (CLI): 0 pass / no gate, 1 gate failed, 2 comparison
 * refused (host mismatch), 3 usage or I/O error.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xmig::report {

/** What a text blob turned out to be. */
enum class InputKind
{
    Bench,   ///< BENCH_swift.json-style single-document baseline
    Metrics, ///< metrics registry JSONL ({"name":...} per line)
    Journal, ///< xmig-lens event journal JSONL
    Samples, ///< time-series CSV ("t,interval,..." header)
    Unknown,
};

const char *inputKindName(InputKind kind);

/** Sniff the artifact type from its first bytes. */
InputKind detectInput(const std::string &text);

// ----- event journal ---------------------------------------------------

/** One parsed journal event. */
struct ReportEvent
{
    uint64_t seq = 0;
    uint64_t t = 0;
    std::string kind;
    std::string cause;
    /// Per-kind named payload, in emission order (e.g. from/to/n).
    std::vector<std::pair<std::string, double>> args;

    /** First arg named `name`, or `fallback`. */
    double arg(const std::string &name, double fallback = 0.0) const;
};

/** A parsed journal dump. */
struct JournalDoc
{
    bool ok = false;
    std::string error;
    uint64_t capacity = 0;
    uint64_t recorded = 0;
    uint64_t dropped = 0;
    std::string incident; ///< non-empty if the dump was an incident
    std::vector<ReportEvent> events;
};

JournalDoc parseJournal(const std::string &text);

// ----- metrics ---------------------------------------------------------

/** One metrics-registry JSONL row. */
struct MetricRow
{
    std::string name;
    std::string kind; ///< "counter" | "gauge" | "histogram"
    double value = 0.0;
    bool hasPercentiles = false;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, p999 = 0.0;
};

struct MetricsDoc
{
    bool ok = false;
    std::string error;
    std::vector<MetricRow> rows;

    const MetricRow *find(const std::string &name) const;
};

MetricsDoc parseMetrics(const std::string &text);

// ----- bench baseline --------------------------------------------------

/** A flattened BENCH_swift.json: numbers keyed by dotted path. */
struct BenchDoc
{
    bool ok = false;
    std::string error;
    std::string bench;    ///< "xmig-swift"
    std::string compiler; ///< host metadata ("" in old baselines)
    double hostCores = 0.0;
    std::map<std::string, double> numbers; ///< e.g. ns_per_reference.x
};

BenchDoc parseBench(const std::string &text);

// ----- reports ---------------------------------------------------------

/**
 * Render the joined run report: journal headline + per-kind/cause
 * breakdown and timeline tail, metric headlines and every histogram's
 * percentiles, and the time-series shape. Any input may be empty.
 */
std::string renderReport(const std::string &journalText,
                         const std::string &metricsText,
                         const std::string &samplesText);

/**
 * Causal chain for migration `n` (the journal's own migration count,
 * 1-based): every event from the previous migration (exclusive) to
 * migration `n` (inclusive), plus a verdict line naming the cause and
 * the A_R / filter state at the decision. Errors render as a line
 * starting with "error:".
 */
std::string renderExplain(const JournalDoc &doc, uint64_t n);

// ----- diff + gate -----------------------------------------------------

/** One numeric difference between runs A and B. */
struct Delta
{
    std::string key;
    double a = 0.0;
    double b = 0.0;
};

/** Per-metric regression bounds parsed from gates.json. */
struct GateSpec
{
    bool ok = false;
    std::string error;
    bool requireSameHost = false;
    /// key -> max allowed fractional regression ((b-a)/a).
    std::map<std::string, double> maxRegressFrac;
};

GateSpec parseGate(const std::string &text);

struct DiffResult
{
    InputKind kind = InputKind::Unknown;
    bool ok = false;      ///< inputs parsed and were comparable
    std::string error;
    bool refused = false; ///< host metadata mismatch under a gate
    std::string refusal;
    bool gateFailed = false;
    std::vector<Delta> deltas;
    std::vector<std::string> notes; ///< e.g. first journal divergence

    std::string render() const;
};

/**
 * Compare two artifacts of the same kind. `gateText` may be empty
 * (informational diff). Identical inputs yield zero deltas.
 */
DiffResult diffTexts(const std::string &a, const std::string &b,
                     const std::string &gateText);

} // namespace xmig::report
