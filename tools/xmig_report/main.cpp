/**
 * @file
 * xmig_report CLI (xmig-lens; see report.hpp for the library).
 *
 *   xmig_report report  [--journal J] [--metrics M] [--samples S]
 *   xmig_report explain N --journal J
 *   xmig_report diff A B [--gate G]     (also: xmig_report --diff A B)
 *
 * Exit status: 0 pass / informational, 1 gate failed, 2 comparison
 * refused (host metadata mismatch), 3 usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report.hpp"

using namespace xmig::report;

namespace {

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: xmig_report <mode> ...\n"
        "\n"
        "xmig-lens run reports and A/B regression diffs.\n"
        "\n"
        "modes:\n"
        "  report [--journal J] [--metrics M] [--samples S]\n"
        "      joined run report: causal event breakdown, metric\n"
        "      headlines, histogram percentiles, time-series shape\n"
        "  explain N --journal J\n"
        "      causal chain that led to migration N\n"
        "  diff A B [--gate G]\n"
        "      compare two artifacts of the same kind (bench JSON,\n"
        "      metrics JSONL, or event journal); with --gate, apply\n"
        "      gates.json regression bounds. Exit 1 on gate failure,\n"
        "      2 when host metadata forbids the comparison.\n",
        to);
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Read a file or die with exit 3. */
std::string
slurpOrDie(const std::string &path)
{
    std::string out;
    if (!readFile(path, &out)) {
        std::fprintf(stderr, "xmig_report: cannot read %s\n",
                     path.c_str());
        std::exit(3);
    }
    return out;
}

int
runDiff(const std::string &a, const std::string &b,
        const std::string &gatePath)
{
    std::string gateText;
    if (!gatePath.empty())
        gateText = slurpOrDie(gatePath);
    const DiffResult result =
        diffTexts(slurpOrDie(a), slurpOrDie(b), gateText);
    std::fputs(result.render().c_str(), stdout);
    if (!result.error.empty())
        return 3;
    if (result.refused)
        return 2;
    return result.gateFailed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 3;
    }
    const std::string mode = argv[1];
    std::vector<std::string> positional;
    std::string journalPath, metricsPath, samplesPath, gatePath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "xmig_report: %s needs a value\n",
                             arg.c_str());
                std::exit(3);
            }
            return argv[++i];
        };
        if (arg == "--journal")
            journalPath = value();
        else if (arg == "--metrics")
            metricsPath = value();
        else if (arg == "--samples")
            samplesPath = value();
        else if (arg == "--gate")
            gatePath = value();
        else if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "xmig_report: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 3;
        } else {
            positional.push_back(arg);
        }
    }

    if (mode == "-h" || mode == "--help") {
        usage(stdout);
        return 0;
    }

    if (mode == "report") {
        std::string journal, metrics, samples;
        if (!journalPath.empty())
            journal = slurpOrDie(journalPath);
        if (!metricsPath.empty())
            metrics = slurpOrDie(metricsPath);
        if (!samplesPath.empty())
            samples = slurpOrDie(samplesPath);
        std::fputs(renderReport(journal, metrics, samples).c_str(),
                   stdout);
        return 0;
    }

    if (mode == "explain") {
        if (positional.size() != 1 || journalPath.empty()) {
            std::fprintf(stderr,
                         "xmig_report: explain needs a migration "
                         "number and --journal\n");
            return 3;
        }
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(positional[0].c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            std::fprintf(stderr,
                         "xmig_report: '%s' is not a migration "
                         "number\n", positional[0].c_str());
            return 3;
        }
        const JournalDoc doc =
            parseJournal(slurpOrDie(journalPath));
        const std::string out = renderExplain(doc, n);
        std::fputs(out.c_str(), stdout);
        return out.rfind("error:", 0) == 0 ? 3 : 0;
    }

    if (mode == "diff" || mode == "--diff") {
        if (positional.size() != 2) {
            std::fprintf(stderr,
                         "xmig_report: diff needs exactly two "
                         "inputs\n");
            return 3;
        }
        return runDiff(positional[0], positional[1], gatePath);
    }

    std::fprintf(stderr, "xmig_report: unknown mode '%s'\n",
                 mode.c_str());
    usage(stderr);
    return 3;
}
