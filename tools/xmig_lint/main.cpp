/**
 * @file
 * xmig_lint CLI (xmig-sentinel; see lint.hpp for the rule catalogue).
 *
 *   xmig_lint [options] [files...]
 *
 * With no explicit files, the TU list is the intersection of
 * build/compile_commands.json with <root>/src, plus every header
 * under <root>/src — one source of truth shared with clang-tidy and
 * editors (CMAKE_EXPORT_COMPILE_COMMANDS is ON at the top level).
 *
 * Exit status: 0 clean (baselined findings allowed), 1 on any
 * non-baselined finding, 2 on usage or I/O errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace xmig::lint;

namespace {

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: xmig_lint [options] [files...]\n"
        "\n"
        "xmig-sentinel determinism & concurrency linter.\n"
        "\n"
        "options:\n"
        "  --root DIR              repo root (default: cwd); paths are\n"
        "                          reported relative to it\n"
        "  --compile-commands F    compile_commands.json for the TU\n"
        "                          list (default: <root>/build/...)\n"
        "  --baseline F            grandfather baseline (default:\n"
        "                          <root>/.xmig-lint-baseline)\n"
        "  --write-baseline F      write current findings as baseline\n"
        "                          and exit 0\n"
        "  --json                  emit findings as JSON to stdout\n"
        "  --sarif F               also write a SARIF 2.1.0 report\n"
        "  --list                  print the TU list and exit\n"
        "  -h, --help              this text\n",
        to);
}

bool
readFile(const fs::path &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

bool
writeFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

bool
hasExtension(const fs::path &p, std::initializer_list<const char *> exts)
{
    const std::string e = p.extension().string();
    for (const char *x : exts) {
        if (e == x)
            return true;
    }
    return false;
}

/** Path relative to root, with "./" trimmed; generic separators. */
std::string
relTo(const fs::path &root, const fs::path &p)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        return p.generic_string();
    return rel.generic_string();
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    fs::path compileCommands;
    fs::path baselinePath;
    fs::path sarifPath;
    fs::path writeBaselinePath;
    bool asJson = false;
    bool listOnly = false;
    std::vector<std::string> explicitFiles;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "xmig_lint: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = value();
        } else if (arg == "--compile-commands") {
            compileCommands = value();
        } else if (arg == "--baseline") {
            baselinePath = value();
        } else if (arg == "--write-baseline") {
            writeBaselinePath = value();
        } else if (arg == "--sarif") {
            sarifPath = value();
        } else if (arg == "--json") {
            asJson = true;
        } else if (arg == "--list") {
            listOnly = true;
        } else if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "xmig_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            explicitFiles.push_back(arg);
        }
    }
    root = fs::absolute(root);
    if (compileCommands.empty())
        compileCommands = root / "build" / "compile_commands.json";
    if (baselinePath.empty())
        baselinePath = root / ".xmig-lint-baseline";

    // ----- assemble the TU list ---------------------------------------
    std::vector<std::string> tuList;
    if (!explicitFiles.empty()) {
        tuList = explicitFiles;
    } else {
        const fs::path srcDir = root / "src";
        std::string cc;
        if (readFile(compileCommands, &cc)) {
            // Sources: what the build actually compiles, restricted
            // to the library tree (tests/bench assert and print by
            // design and are not determinism-critical).
            for (const std::string &f : filesFromCompileCommands(cc)) {
                const fs::path p(f);
                const std::string gen = p.generic_string();
                if (gen.find("/src/") != std::string::npos &&
                    hasExtension(p, {".cpp", ".cc", ".cxx"}))
                    tuList.push_back(f);
            }
        } else if (fs::exists(srcDir)) {
            // No build tree yet: fall back to walking for sources.
            for (const auto &e :
                 fs::recursive_directory_iterator(srcDir)) {
                if (e.is_regular_file() &&
                    hasExtension(e.path(), {".cpp", ".cc", ".cxx"}))
                    tuList.push_back(e.path().string());
            }
        }
        // Headers are not TUs in compile_commands; walk for them.
        if (fs::exists(srcDir)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(srcDir)) {
                if (e.is_regular_file() &&
                    hasExtension(e.path(), {".hpp", ".h", ".hh"}))
                    tuList.push_back(e.path().string());
            }
        }
        if (tuList.empty()) {
            std::fprintf(stderr,
                         "xmig_lint: no inputs: neither %s nor %s "
                         "yielded files (configure the build or pass "
                         "files explicitly)\n",
                         compileCommands.string().c_str(),
                         srcDir.string().c_str());
            return 2;
        }
    }

    // ----- read + lint ------------------------------------------------
    std::vector<std::pair<std::string, std::string>> files;
    files.reserve(tuList.size());
    for (const std::string &f : tuList) {
        std::string content;
        if (!readFile(f, &content)) {
            std::fprintf(stderr, "xmig_lint: cannot read %s\n",
                         f.c_str());
            return 2;
        }
        files.emplace_back(relTo(root, f), std::move(content));
    }
    std::sort(files.begin(), files.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    files.erase(std::unique(files.begin(), files.end(),
                            [](const auto &a, const auto &b) {
                                return a.first == b.first;
                            }),
                files.end());
    if (listOnly) {
        for (const auto &[path, content] : files)
            std::printf("%s\n", path.c_str());
        return 0;
    }
    const std::vector<Finding> findings = lintFiles(files);

    if (!writeBaselinePath.empty()) {
        if (!writeFile(writeBaselinePath, renderBaseline(findings))) {
            std::fprintf(stderr, "xmig_lint: cannot write %s\n",
                         writeBaselinePath.string().c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "xmig_lint: wrote %zu finding(s) to baseline %s\n",
                     findings.size(),
                     writeBaselinePath.string().c_str());
        return 0;
    }

    std::multiset<std::string> baseline;
    std::string baselineContent;
    if (readFile(baselinePath, &baselineContent))
        baseline = parseBaseline(baselineContent);
    auto [fresh, grandfathered] =
        partitionAgainstBaseline(findings, baseline);

    if (!sarifPath.empty() &&
        !writeFile(sarifPath, renderSarif(fresh))) {
        std::fprintf(stderr, "xmig_lint: cannot write %s\n",
                     sarifPath.string().c_str());
        return 2;
    }
    if (asJson)
        std::fputs(renderJson(fresh).c_str(), stdout);
    else
        std::fputs(renderText(fresh).c_str(), stdout);
    std::fprintf(
        stderr,
        "xmig_lint: %zu file(s), %zu finding(s) (%zu baselined)\n",
        files.size(), findings.size(), grandfathered.size());
    return fresh.empty() ? 0 : 1;
}
