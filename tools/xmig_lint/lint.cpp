#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <unordered_set>

namespace xmig::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/** Lexical class of a token. The linter needs identifiers and a few
 *  multi-char punctuators (`::`, `->`); everything else is single-
 *  char punctuation. */
enum class TokKind : uint8_t
{
    Ident,
    Number,
    String,
    Punct,
};

struct Tok
{
    TokKind kind;
    std::string text;
    unsigned line;
};

/** A // or block comment, for suppression parsing. */
struct Comment
{
    unsigned line; ///< line the comment starts on
    std::string text;
};

/** One preprocessor directive (continuations folded). */
struct Directive
{
    unsigned line;
    std::string text;
};

struct LexedFile
{
    std::vector<Tok> toks;
    std::vector<Comment> comments;
    std::vector<Directive> directives;
};

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Tokenize C++ source: skips whitespace and comments (capturing the
 * comments), folds preprocessor lines into directives, understands
 * string/char literals including raw strings, and emits `::` / `->`
 * as single punctuator tokens.
 */
LexedFile
lex(const std::string &src)
{
    LexedFile out;
    unsigned line = 1;
    size_t i = 0;
    const size_t n = src.size();
    bool atLineStart = true;

    auto peek = [&](size_t k) -> char {
        return i + k < n ? src[i + k] : '\0';
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#' && atLineStart) {
            // Preprocessor line; fold backslash continuations.
            const unsigned startLine = line;
            std::string text;
            while (i < n && src[i] != '\n') {
                if (src[i] == '\\' && peek(1) == '\n') {
                    i += 2;
                    ++line;
                    text += ' ';
                    continue;
                }
                text += src[i++];
            }
            out.directives.push_back({startLine, text});
            continue;
        }
        atLineStart = false;
        if (c == '/' && peek(1) == '/') {
            const unsigned startLine = line;
            std::string text;
            i += 2;
            while (i < n && src[i] != '\n')
                text += src[i++];
            out.comments.push_back({startLine, text});
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const unsigned startLine = line;
            std::string text;
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                text += src[i++];
            }
            i = std::min(i + 2, n);
            out.comments.push_back({startLine, text});
            continue;
        }
        if (identStart(c)) {
            const size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            std::string word = src.substr(start, i - start);
            // Raw string literal: R"delim( ... )delim"
            if (i < n && src[i] == '"' &&
                (word == "R" || word == "LR" || word == "uR" ||
                 word == "u8R" || word == "UR")) {
                ++i; // consume the quote
                std::string delim;
                while (i < n && src[i] != '(')
                    delim += src[i++];
                ++i; // consume '('
                const std::string close = ")" + delim + "\"";
                const size_t end = src.find(close, i);
                const size_t stop = end == std::string::npos
                                        ? n
                                        : end + close.size();
                for (; i < stop; ++i) {
                    if (src[i] == '\n')
                        ++line;
                }
                out.toks.push_back({TokKind::String, "<raw>", line});
                continue;
            }
            out.toks.push_back({TokKind::Ident, std::move(word), line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const size_t start = i;
            while (i < n && (identChar(src[i]) || src[i] == '.' ||
                             ((src[i] == '+' || src[i] == '-') &&
                              (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                               src[i - 1] == 'p' || src[i - 1] == 'P'))))
                ++i;
            out.toks.push_back(
                {TokKind::Number, src.substr(start, i - start), line});
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n)
                    ++i;
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            ++i; // closing quote
            out.toks.push_back({TokKind::String, "<str>", line});
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            out.toks.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            out.toks.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.toks.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Shared scanning helpers
// ---------------------------------------------------------------------------

bool
isIdent(const Tok &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

/**
 * With toks[i] == "<", return the index one past the matching ">".
 * `>>` is two tokens, so nested template argument lists balance.
 * Returns i + 1 (no progress into the tokens) if unbalanced.
 */
size_t
skipAngles(const std::vector<Tok> &toks, size_t i)
{
    int depth = 0;
    for (size_t j = i; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == "<") {
            ++depth;
        } else if (toks[j].text == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (toks[j].text == ";" || toks[j].text == "{") {
            break; // not a template argument list after all
        }
    }
    return i + 1;
}

/** With toks[i] == open, return the index of the matching closer. */
size_t
findMatch(const std::vector<Tok> &toks, size_t i, const char *open,
          const char *close)
{
    int depth = 0;
    for (size_t j = i; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::Punct)
            continue;
        if (toks[j].text == open)
            ++depth;
        else if (toks[j].text == close && --depth == 0)
            return j;
    }
    return toks.size();
}

std::string
trimmed(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    size_t e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** 1-based source line text, trimmed (for baseline keys). */
std::string
sourceLine(const std::string &content, unsigned line)
{
    size_t pos = 0;
    for (unsigned l = 1; l < line; ++l) {
        pos = content.find('\n', pos);
        if (pos == std::string::npos)
            return "";
        ++pos;
    }
    size_t end = content.find('\n', pos);
    if (end == std::string::npos)
        end = content.size();
    return trimmed(content.substr(pos, end - pos));
}

// ---------------------------------------------------------------------------
// Suppressions:  // xmig-lint: allow(rule[, rule]) -- justification
// ---------------------------------------------------------------------------

struct Suppressions
{
    /** line -> rules allowed on that line and the next. */
    std::map<unsigned, std::set<std::string>> allow;
    std::vector<Finding> malformed; ///< bad-suppression findings
};

Suppressions
parseSuppressions(const std::string &path,
                  const std::vector<Comment> &comments,
                  const std::string &content)
{
    Suppressions out;
    // A justification may wrap onto following comment lines; the
    // suppression then anchors on the *last* line of the comment run,
    // so it still reaches the first code line after it.
    std::set<unsigned> commentLines;
    for (const Comment &c : comments)
        commentLines.insert(c.line);
    for (const Comment &c : comments) {
        const size_t tag = c.text.find("xmig-lint:");
        if (tag == std::string::npos)
            continue;
        auto bad = [&](const std::string &why) {
            out.malformed.push_back({path, c.line, "bad-suppression",
                                     why, sourceLine(content, c.line)});
        };
        const size_t open = c.text.find("allow(", tag);
        if (open == std::string::npos) {
            bad("xmig-lint comment without allow(rule-id, ...)");
            continue;
        }
        const size_t close = c.text.find(')', open);
        if (close == std::string::npos) {
            bad("unterminated allow( list");
            continue;
        }
        // Comma-separated rule ids.
        std::set<std::string> rules;
        std::string list =
            c.text.substr(open + 6, close - open - 6) + ",";
        bool ok = true;
        std::string cur;
        for (char ch : list) {
            if (ch == ',') {
                const std::string rule = trimmed(cur);
                cur.clear();
                if (rule.empty())
                    continue;
                if (!knownRule(rule)) {
                    bad("unknown rule '" + rule + "' in allow()");
                    ok = false;
                    break;
                }
                rules.insert(rule);
            } else {
                cur += ch;
            }
        }
        if (!ok)
            continue;
        if (rules.empty()) {
            bad("empty allow() list");
            continue;
        }
        // The justification is mandatory: "-- why this is safe".
        const size_t dash = c.text.find("--", close);
        if (dash == std::string::npos ||
            trimmed(c.text.substr(dash + 2)).empty()) {
            bad("suppression lacks a '-- justification'");
            continue;
        }
        unsigned anchor = c.line;
        while (commentLines.count(anchor + 1))
            ++anchor;
        out.allow[c.line].insert(rules.begin(), rules.end());
        if (anchor != c.line)
            out.allow[anchor].insert(rules.begin(), rules.end());
    }
    return out;
}

bool
suppressed(const Suppressions &sup, unsigned line,
           const std::string &rule)
{
    for (unsigned l : {line, line > 0 ? line - 1 : 0}) {
        auto it = sup.allow.find(l);
        if (it != sup.allow.end() && it->second.count(rule))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Rule: no-wallclock
// ---------------------------------------------------------------------------

/** Identifiers banned wherever they appear (clock/entropy types). */
const std::unordered_set<std::string> kBannedTypeIdents = {
    "system_clock",
    "high_resolution_clock",
    "steady_clock",
    "random_device",
};

/** Identifiers banned in call position. */
const std::unordered_set<std::string> kBannedCallIdents = {
    "time",        "clock",     "rand",      "srand",
    "gettimeofday", "clock_gettime", "timespec_get",
    "localtime",   "gmtime",    "mktime",    "ctime",
    "asctime",     "difftime",
};

/** Headers whose inclusion implies wall-clock / ambient entropy. */
const std::unordered_set<std::string> kBannedIncludes = {
    "ctime",
    "time.h",
    "sys/time.h",
    "random",
};

/** Keywords after which an identifier is in call, not declaration,
 *  position (`return clock()` must still be flagged). */
const std::unordered_set<std::string> kExprKeywords = {
    "return", "co_return", "co_yield", "throw", "case", "else",
    "do",     "goto",      "not",      "and",   "or",
};

bool
wallclockExempt(const std::string &path)
{
    // The profiling subsystem is the one sanctioned wall-clock user:
    // XMIG_PROF_SCOPE exists to measure host time, and its output is
    // advisory, never part of a determinism-checked artifact.
    return path.find("src/obs/prof.") != std::string::npos;
}

void
ruleNoWallclock(const std::string &path, const LexedFile &lexed,
                const std::string &content,
                std::vector<Finding> &findings)
{
    if (wallclockExempt(path))
        return;
    for (const Directive &d : lexed.directives) {
        if (d.text.find("include") == std::string::npos)
            continue;
        for (const std::string &hdr : kBannedIncludes) {
            if (d.text.find("<" + hdr + ">") != std::string::npos ||
                d.text.find("\"" + hdr + "\"") != std::string::npos) {
                findings.push_back(
                    {path, d.line, "no-wallclock",
                     "#include <" + hdr +
                         "> pulls wall-clock/entropy primitives into "
                         "a simulation TU; simulated time and xmig::Rng "
                         "are the only sanctioned sources",
                     sourceLine(content, d.line)});
            }
        }
    }
    const auto &toks = lexed.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        if (kBannedTypeIdents.count(t.text)) {
            findings.push_back(
                {path, t.line, "no-wallclock",
                 "'" + t.text +
                     "' is a wall-clock/entropy source; a replayable "
                     "sim path must use simulated time or a seeded "
                     "xmig::Rng (wall clock is allowed only in "
                     "src/obs/prof.*)",
                 sourceLine(content, t.line)});
            continue;
        }
        if (!kBannedCallIdents.count(t.text))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].kind != TokKind::Punct ||
            toks[i + 1].text != "(")
            continue;
        // Only call position: skip member access (tr.clock()),
        // declarations (uint64_t clock() const) and qualified names
        // other than std:: (Tracer::clock definitions).
        if (i > 0) {
            const Tok &p = toks[i - 1];
            if (p.kind == TokKind::Punct &&
                (p.text == "." || p.text == "->"))
                continue;
            if (p.kind == TokKind::Ident && !kExprKeywords.count(p.text))
                continue;
            if (p.kind == TokKind::Punct && p.text == "::") {
                const bool stdQualified =
                    i >= 2 && isIdent(toks[i - 2], "std");
                const bool globalQualified =
                    i < 2 || toks[i - 2].kind != TokKind::Ident;
                if (!stdQualified && !globalQualified)
                    continue;
            }
        }
        findings.push_back(
            {path, t.line, "no-wallclock",
             "call to '" + t.text +
                 "' injects wall-clock/ambient state into a sim "
                 "path; use simulated time or a seeded xmig::Rng",
             sourceLine(content, t.line)});
    }
}

// ---------------------------------------------------------------------------
// Rule: unordered-output
// ---------------------------------------------------------------------------

/** Tokens that mark a TU as producing CSV/JSONL/trace output. */
const std::unordered_set<std::string> kOutputMarkers = {
    "fopen", "fwrite",  "fprintf", "printf",
    "fputs", "puts",    "ofstream", "cout",
    "XMIG_TRACE", "XMIG_TRACE_COUNTER",
};

/**
 * Collect names declared with std::unordered_{map,set} type in this
 * file (members, locals and parameters alike).
 */
void
collectUnorderedNames(const LexedFile &lexed,
                      std::unordered_set<std::string> &names)
{
    const auto &toks = lexed.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "unordered_map") &&
            !isIdent(toks[i], "unordered_set"))
            continue;
        if (i + 1 >= toks.size() || toks[i + 1].text != "<")
            continue;
        size_t j = skipAngles(toks, i + 1);
        // Declarator: [const] [&*]* name, unless it is a function
        // declaration (name immediately followed by '(').
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                isIdent(toks[j], "const")))
            ++j;
        if (j + 1 < toks.size() && toks[j].kind == TokKind::Ident &&
            toks[j + 1].text != "(")
            names.insert(toks[j].text);
    }
}

bool
writesOutput(const LexedFile &lexed)
{
    for (const Tok &t : lexed.toks) {
        if (t.kind == TokKind::Ident && kOutputMarkers.count(t.text))
            return true;
    }
    return false;
}

void
ruleUnorderedOutput(const std::string &path, const LexedFile &lexed,
                    const std::string &content,
                    const std::unordered_set<std::string> &unordered,
                    std::vector<Finding> &findings)
{
    if (!writesOutput(lexed))
        return;
    const auto &toks = lexed.toks;
    auto flag = [&](unsigned line, const std::string &what) {
        findings.push_back(
            {path, line, "unordered-output",
             what + " iterates a std::unordered_{map,set} in a TU "
                    "that writes CSV/JSONL/trace output; iteration "
                    "order is implementation-defined — sort keys at "
                    "the export boundary, or suppress with a "
                    "justification if the loop is order-free",
             sourceLine(content, line)});
    };
    for (size_t i = 0; i < toks.size(); ++i) {
        // Range-for whose range expression names an unordered
        // container (or an unordered type directly).
        if (isIdent(toks[i], "for") && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            const size_t close = findMatch(toks, i + 1, "(", ")");
            size_t colon = toks.size();
            int depth = 0;
            for (size_t j = i + 1; j < close; ++j) {
                if (toks[j].kind != TokKind::Punct)
                    continue;
                if (toks[j].text == "(")
                    ++depth;
                else if (toks[j].text == ")")
                    --depth;
                else if (depth == 1 && toks[j].text == ";")
                    break; // classic for
                else if (depth == 1 && toks[j].text == ":") {
                    colon = j;
                    break;
                }
            }
            for (size_t j = colon + 1; j < close && j < toks.size();
                 ++j) {
                if (toks[j].kind == TokKind::Ident &&
                    (unordered.count(toks[j].text) ||
                     toks[j].text == "unordered_map" ||
                     toks[j].text == "unordered_set")) {
                    flag(toks[i].line, "range-for");
                    break;
                }
            }
            continue;
        }
        // Explicit iterator loop: container.begin() / ->begin().
        if (toks[i].kind == TokKind::Ident &&
            unordered.count(toks[i].text) && i + 3 < toks.size() &&
            (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
            (isIdent(toks[i + 2], "begin") ||
             isIdent(toks[i + 2], "cbegin")) &&
            toks[i + 3].text == "(") {
            flag(toks[i].line, "iterator loop");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: pointer-order
// ---------------------------------------------------------------------------

void
rulePointerOrder(const std::string &path, const LexedFile &lexed,
                 const std::string &content,
                 std::vector<Finding> &findings)
{
    const auto &toks = lexed.toks;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Tok &t = toks[i];
        if (t.kind != TokKind::Ident)
            continue;
        if (t.text == "uintptr_t" || t.text == "intptr_t") {
            findings.push_back(
                {path, t.line, "pointer-order",
                 "'" + t.text +
                     "' converts a pointer to an orderable integer; "
                     "address-derived order varies run to run (ASLR, "
                     "allocator) and must not reach output",
                 sourceLine(content, t.line)});
            continue;
        }
        const bool container =
            t.text == "map" || t.text == "set" ||
            t.text == "unordered_map" || t.text == "unordered_set" ||
            t.text == "multimap" || t.text == "multiset" ||
            t.text == "hash";
        if (!container || i + 1 >= toks.size() ||
            toks[i + 1].text != "<")
            continue;
        // First template argument: tokens to the first ',' (or the
        // matching '>') at depth 1. Pointer-typed keys end with '*'.
        const size_t end = skipAngles(toks, i + 1);
        size_t lastArgTok = 0;
        int depth = 0;
        for (size_t j = i + 1; j + 1 < end; ++j) {
            if (toks[j].kind == TokKind::Punct) {
                if (toks[j].text == "<")
                    ++depth;
                else if (toks[j].text == ">")
                    --depth;
                else if (depth == 1 && toks[j].text == ",")
                    break;
            }
            lastArgTok = j;
        }
        if (lastArgTok != 0 && toks[lastArgTok].text == "*") {
            findings.push_back(
                {path, t.line, "pointer-order",
                 "std::" + t.text +
                     " keyed on raw pointer values: ordering/hash "
                     "follows addresses, which vary run to run — key "
                     "on a stable id instead",
                 sourceLine(content, t.line)});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

const std::unordered_set<std::string> kCapabilityMacros = {
    "XMIG_GUARDED_BY", "XMIG_PT_GUARDED_BY", "XMIG_REQUIRES",
    "XMIG_ACQUIRE",    "XMIG_RELEASE",       "XMIG_EXCLUDES",
    "XMIG_RETURN_CAPABILITY",
};

void
ruleNakedMutex(const std::string &path, const LexedFile &lexed,
               const std::string &content,
               std::vector<Finding> &findings)
{
    const auto &toks = lexed.toks;
    // Every mutex name referenced from a capability annotation.
    std::unordered_set<std::string> annotated;
    for (size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !kCapabilityMacros.count(toks[i].text) ||
            i + 1 >= toks.size() || toks[i + 1].text != "(")
            continue;
        const size_t close = findMatch(toks, i + 1, "(", ")");
        for (size_t j = i + 2; j < close; ++j) {
            if (toks[j].kind == TokKind::Ident)
                annotated.insert(toks[j].text);
        }
    }
    // std::mutex / std::shared_mutex declarations: `std :: mutex
    // name ;` (possibly with `mutable` before, initializer after).
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!isIdent(toks[i], "std") || toks[i + 1].text != "::")
            continue;
        if (!isIdent(toks[i + 2], "mutex") &&
            !isIdent(toks[i + 2], "shared_mutex"))
            continue;
        const Tok &name = toks[i + 3];
        if (name.kind != TokKind::Ident)
            continue; // e.g. lock_guard<std::mutex> — next is '>'
        if (i + 4 < toks.size() && toks[i + 4].text != ";" &&
            toks[i + 4].text != "=" && toks[i + 4].text != "{")
            continue;
        if (annotated.count(name.text))
            continue;
        findings.push_back(
            {path, name.line, "naked-mutex",
             "std::" + toks[i + 2].text + " '" + name.text +
                 "' has no capability annotation in this file: name "
                 "the state it guards with XMIG_GUARDED_BY(" +
                 name.text +
                 ") (src/util/thread_annotations.hpp) so clang "
                 "-Wthread-safety can check every access",
             sourceLine(content, name.line)});
    }
}

// ---------------------------------------------------------------------------
// Rule: contract-coverage
// ---------------------------------------------------------------------------

const std::unordered_set<std::string> kContractMacros = {
    "XMIG_ASSERT",
    "XMIG_AUDIT",
    "XMIG_EXPECT",
    // A guarded panic is a contract check firing: the condition was
    // evaluated by the surrounding if.
    "XMIG_PANIC",
};

/** Bodies spanning fewer lines than this are trivial setters /
 *  forwarders; demanding a contract there is noise. */
constexpr unsigned kContractMinBodyLines = 8;

bool
contractScoped(const std::string &path)
{
    return (path.find("src/core/") != std::string::npos ||
            path.find("src/multicore/") != std::string::npos) &&
           path.size() > 4 &&
           path.compare(path.size() - 4, 4, ".cpp") == 0;
}

void
ruleContractCoverage(const std::string &path, const LexedFile &lexed,
                     const std::string &content,
                     std::vector<Finding> &findings)
{
    if (!contractScoped(path))
        return;
    const auto &toks = lexed.toks;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
        // Out-of-line definition: Class :: method ( ... ) [const] {
        if (toks[i].kind != TokKind::Ident ||
            toks[i + 1].text != "::" ||
            toks[i + 2].kind != TokKind::Ident ||
            toks[i + 3].text != "(")
            continue;
        // Qualified *calls* and nested qualifications are filtered
        // below by requiring a '{' before any statement punctuation.
        const size_t close = findMatch(toks, i + 3, "(", ")");
        if (close >= toks.size())
            continue;
        bool isConst = false;
        bool isDefinition = false;
        size_t bodyOpen = toks.size();
        for (size_t j = close + 1; j < toks.size(); ++j) {
            const Tok &t = toks[j];
            if (isIdent(t, "const")) {
                isConst = true;
                continue;
            }
            if (t.kind == TokKind::Ident || t.text == "(" ||
                t.text == ")" || t.text == "&") {
                // noexcept, override, trailing specifiers...
                continue;
            }
            if (t.text == ":") {
                // Constructor initializer list: the body is the
                // first '{' at paren depth 0 from here.
                int depth = 0;
                for (size_t k = j + 1; k < toks.size(); ++k) {
                    if (toks[k].text == "(")
                        ++depth;
                    else if (toks[k].text == ")")
                        --depth;
                    else if (toks[k].text == "{" && depth == 0) {
                        bodyOpen = k;
                        break;
                    }
                }
                isDefinition = bodyOpen < toks.size();
                break;
            }
            if (t.text == "{") {
                bodyOpen = j;
                isDefinition = true;
            }
            break;
        }
        if (!isDefinition || isConst)
            continue;
        const size_t bodyClose = findMatch(toks, bodyOpen, "{", "}");
        if (bodyClose >= toks.size())
            continue;
        const unsigned bodyLines =
            toks[bodyClose].line - toks[bodyOpen].line + 1;
        if (bodyLines < kContractMinBodyLines) {
            i = bodyOpen; // skip the trivial body
            continue;
        }
        bool hasContract = false;
        for (size_t j = bodyOpen; j <= bodyClose && !hasContract; ++j) {
            if (toks[j].kind != TokKind::Ident)
                continue;
            if (kContractMacros.count(toks[j].text)) {
                hasContract = true;
            } else if (toks[j].text.compare(0, 5, "audit") == 0 &&
                       j + 1 <= bodyClose && toks[j + 1].text == "(") {
                // Calls into audit helpers (auditConsistency, ...)
                // carry the contract for their caller.
                hasContract = true;
            }
        }
        if (!hasContract) {
            findings.push_back(
                {path, toks[i].line, "contract-coverage",
                 "mutating method " + toks[i].text +
                     "::" + toks[i + 2].text + " (" +
                     std::to_string(bodyLines) +
                     " lines) has no XMIG_ASSERT/XMIG_AUDIT/"
                     "XMIG_EXPECT site; state what it preserves, or "
                     "suppress with a justification",
                 sourceLine(content, toks[i].line)});
        }
        i = bodyOpen; // resume after the header (nested defs: none)
    }
}

// ---------------------------------------------------------------------------
// Rule: journal-in-hot-loop
// ---------------------------------------------------------------------------

/** Journal methods whose direct use bypasses the macro discipline. */
const std::unordered_set<std::string> kJournalGatedMethods = {
    "record",
    "setClock",
    "dumpNow",
};

bool
identMentionsJournal(const std::string &text)
{
    std::string lower = text;
    for (char &c : lower)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return lower.find("journal") != std::string::npos;
}

void
ruleJournalInHotLoop(const std::string &path, const LexedFile &lexed,
                     const std::string &content,
                     std::vector<Finding> &findings)
{
    // src/obs/ is the journal's home: the Journal class and the
    // XMIG_JOURNAL macro family legitimately spell out these calls.
    if (path.find("src/") == std::string::npos ||
        path.find("src/obs/") != std::string::npos)
        return;
    const auto &toks = lexed.toks;
    for (size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !identMentionsJournal(toks[i].text))
            continue;
        if (toks[i + 1].kind != TokKind::Punct ||
            (toks[i + 1].text != "." && toks[i + 1].text != "->"))
            continue;
        if (toks[i + 2].kind != TokKind::Ident ||
            kJournalGatedMethods.count(toks[i + 2].text) == 0)
            continue;
        if (toks[i + 3].text != "(")
            continue;
        findings.push_back(
            {path, toks[i].line, "journal-in-hot-loop",
             "direct " + toks[i].text + toks[i + 1].text +
                 toks[i + 2].text +
                 "() bypasses the journal macros: it is not compiled "
                 "out under -DXMIG_JOURNAL=OFF and pays argument "
                 "evaluation even with no journal attached; use "
                 "XMIG_JOURNAL / XMIG_JOURNAL_CLOCK / "
                 "XMIG_JOURNAL_INCIDENT (src/obs/journal.hpp)",
             sourceLine(content, toks[i].line)});
    }
}

// ---------------------------------------------------------------------------
// Rule: alloc-in-hot-loop
// ---------------------------------------------------------------------------

/** Calls that allocate (or may reallocate) heap memory. */
const std::unordered_set<std::string> kHotAllocCalls = {
    "malloc",      "calloc",      "realloc",  "aligned_alloc",
    "strdup",      "make_unique", "make_shared",
    "push_back",   "emplace_back", "resize",  "reserve",
    "insert",      "emplace",
};

/** Member calls that are the per-reference virtual seam (the OeStore
 *  interface); batched code must reach the concrete store through its
 *  devirtualized *Fast entry points instead. */
const std::unordered_set<std::string> kScalarSeamMembers = {
    "lookup",
    "store",
};

/** Unqualified calls that re-enter the scalar per-reference path
 *  (AffinityEngine::reference, MigrationMachine::access). */
const std::unordered_set<std::string> kScalarEntryCalls = {
    "reference",
    "access",
};

/**
 * Scan the bodies of *Batch functions (accessBatch, referenceBatch,
 * filterBatch, onRequestBatch, ...) — the xmig-bolt hot paths whose
 * whole point is to amortize per-reference overhead — for heap
 * allocation and for per-reference dispatch through a virtual seam.
 * Cold fallback arms (fault-armed, unbounded store) carry an explicit
 * suppression with the justification of why they are exact.
 */
void
ruleAllocInHotLoop(const std::string &path, const LexedFile &lexed,
                   const std::string &content,
                   std::vector<Finding> &findings)
{
    const auto &toks = lexed.toks;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Ident ||
            toks[i].text.find("Batch") == std::string::npos ||
            toks[i + 1].text != "(")
            continue;
        const size_t close = findMatch(toks, i + 1, "(", ")");
        if (close >= toks.size())
            continue;
        // A definition, not a call or declaration: only specifiers
        // (const, noexcept, override, ref-qualifiers) between the
        // parameter list and the body brace. Constructor initializer
        // lists of Batch* classes are deliberately not chased — the
        // rule targets the per-reference loops, not setup code.
        size_t bodyOpen = toks.size();
        for (size_t j = close + 1; j < toks.size(); ++j) {
            const Tok &t = toks[j];
            if (t.kind == TokKind::Ident || t.text == "&" ||
                t.text == "(" || t.text == ")")
                continue;
            if (t.text == "{")
                bodyOpen = j;
            break;
        }
        if (bodyOpen >= toks.size())
            continue;
        const size_t bodyClose = findMatch(toks, bodyOpen, "{", "}");
        if (bodyClose >= toks.size())
            continue;
        const std::string fn = toks[i].text;
        auto flag = [&](unsigned line, const std::string &what) {
            findings.push_back(
                {path, line, "alloc-in-hot-loop",
                 what + " inside batched hot path " + fn +
                     "(): the *Batch loops exist to amortize "
                     "per-reference overhead, so they must be "
                     "allocation-free and devirtualized — hoist the "
                     "work out of the loop or use the concrete *Fast "
                     "entry points; a cold exact-fallback arm may be "
                     "suppressed with a justification",
                 sourceLine(content, line)});
        };
        for (size_t j = bodyOpen + 1; j < bodyClose; ++j) {
            const Tok &t = toks[j];
            if (t.kind != TokKind::Ident)
                continue;
            if (t.text == "new") {
                flag(t.line, "operator new");
                continue;
            }
            // Call position, allowing a template argument list
            // (std::make_unique<T>(...)).
            size_t paren = j + 1;
            if (paren < bodyClose && toks[paren].text == "<")
                paren = skipAngles(toks, paren);
            if (paren >= bodyClose || toks[paren].text != "(")
                continue;
            const bool member =
                j > 0 && toks[j - 1].kind == TokKind::Punct &&
                (toks[j - 1].text == "." || toks[j - 1].text == "->");
            if (kHotAllocCalls.count(t.text)) {
                flag(t.line, "heap allocation via " + t.text + "()");
            } else if (member && kScalarSeamMembers.count(t.text)) {
                flag(t.line, "per-reference virtual dispatch " +
                                 toks[j - 1].text + t.text + "()");
            } else if (!member && kScalarEntryCalls.count(t.text)) {
                flag(t.line,
                     "per-reference scalar re-entry " + t.text + "()");
            }
        }
        i = bodyClose;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "no-wallclock",        "unordered-output",
        "pointer-order",       "naked-mutex",
        "contract-coverage",   "journal-in-hot-loop",
        "alloc-in-hot-loop",   "bad-suppression",
    };
    return rules;
}

bool
knownRule(const std::string &rule)
{
    const auto &rules = allRules();
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

std::vector<Finding>
lintFiles(const std::vector<std::pair<std::string, std::string>> &files)
{
    // Pass 1: unordered container names across every file — members
    // are declared in headers but iterated in .cpp files.
    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    std::unordered_set<std::string> unordered;
    for (const auto &[path, content] : files) {
        lexed.push_back(lex(content));
        collectUnorderedNames(lexed.back(), unordered);
    }

    // Pass 2: per-file rules, then suppression filtering.
    std::vector<Finding> findings;
    for (size_t f = 0; f < files.size(); ++f) {
        const auto &[path, content] = files[f];
        std::vector<Finding> raw;
        ruleNoWallclock(path, lexed[f], content, raw);
        ruleUnorderedOutput(path, lexed[f], content, unordered, raw);
        rulePointerOrder(path, lexed[f], content, raw);
        ruleNakedMutex(path, lexed[f], content, raw);
        ruleContractCoverage(path, lexed[f], content, raw);
        ruleJournalInHotLoop(path, lexed[f], content, raw);
        ruleAllocInHotLoop(path, lexed[f], content, raw);

        const Suppressions sup =
            parseSuppressions(path, lexed[f].comments, content);
        for (Finding &finding : raw) {
            if (!suppressed(sup, finding.line, finding.rule))
                findings.push_back(std::move(finding));
        }
        for (const Finding &m : sup.malformed)
            findings.push_back(m);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &content)
{
    return lintFiles({{path, content}});
}

std::string
baselineKey(const Finding &finding)
{
    return finding.rule + "|" + finding.file + "|" + finding.lineText;
}

std::multiset<std::string>
parseBaseline(const std::string &content)
{
    std::multiset<std::string> out;
    size_t pos = 0;
    while (pos <= content.size()) {
        size_t end = content.find('\n', pos);
        if (end == std::string::npos)
            end = content.size();
        const std::string line = trimmed(content.substr(pos, end - pos));
        if (!line.empty() && line[0] != '#')
            out.insert(line);
        if (end == content.size())
            break;
        pos = end + 1;
    }
    return out;
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    std::string out =
        "# xmig_lint grandfather baseline. One `rule|file|line-text`\n"
        "# key per line; keys are content-addressed, so line-number\n"
        "# drift does not invalidate them. Shrink this file; never\n"
        "# grow it without a review (docs/analysis.md).\n";
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const Finding &f : findings)
        keys.push_back(baselineKey(f));
    std::sort(keys.begin(), keys.end());
    for (const std::string &k : keys)
        out += k + "\n";
    return out;
}

std::pair<std::vector<Finding>, std::vector<Finding>>
partitionAgainstBaseline(const std::vector<Finding> &findings,
                         std::multiset<std::string> baseline)
{
    std::vector<Finding> fresh;
    std::vector<Finding> grandfathered;
    for (const Finding &f : findings) {
        auto it = baseline.find(baselineKey(f));
        if (it != baseline.end()) {
            baseline.erase(it); // each entry absolves one finding
            grandfathered.push_back(f);
        } else {
            fresh.push_back(f);
        }
    }
    return {std::move(fresh), std::move(grandfathered)};
}

std::string
renderText(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": " + f.rule +
               ": " + f.message + "\n";
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "  {\"file\":\"" + jsonEscape(f.file) +
               "\",\"line\":" + std::to_string(f.line) +
               ",\"rule\":\"" + jsonEscape(f.rule) +
               "\",\"message\":\"" + jsonEscape(f.message) + "\"}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

std::string
renderSarif(const std::vector<Finding> &findings)
{
    std::string out =
        "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"xmig_lint\",\"informationUri\":"
        "\"docs/analysis.md\",\"rules\":[";
    const auto &rules = allRules();
    for (size_t i = 0; i < rules.size(); ++i) {
        if (i)
            out += ",";
        out += "{\"id\":\"" + rules[i] + "\"}";
    }
    out += "]}},\"results\":[";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            out += ",";
        out += "{\"ruleId\":\"" + jsonEscape(f.rule) +
               "\",\"level\":\"error\",\"message\":{\"text\":\"" +
               jsonEscape(f.message) +
               "\"},\"locations\":[{\"physicalLocation\":{"
               "\"artifactLocation\":{\"uri\":\"" +
               jsonEscape(f.file) +
               "\"},\"region\":{\"startLine\":" +
               std::to_string(f.line) + "}}}]}";
    }
    out += "]}]}\n";
    return out;
}

std::vector<std::string>
filesFromCompileCommands(const std::string &content)
{
    std::vector<std::string> out;
    const std::string key = "\"file\"";
    size_t pos = 0;
    while ((pos = content.find(key, pos)) != std::string::npos) {
        pos += key.size();
        // Skip whitespace and the colon, then read the string value.
        while (pos < content.size() &&
               (std::isspace(static_cast<unsigned char>(content[pos])) ||
                content[pos] == ':'))
            ++pos;
        if (pos >= content.size() || content[pos] != '"')
            continue;
        ++pos;
        std::string path;
        while (pos < content.size() && content[pos] != '"') {
            if (content[pos] == '\\' && pos + 1 < content.size()) {
                ++pos; // CMake escapes backslashes on Windows
            }
            path += content[pos++];
        }
        out.push_back(std::move(path));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace xmig::lint
