/**
 * @file
 * xmig-sentinel: a project-specific determinism & concurrency linter.
 *
 * The repo's reproduction methodology rests on one invariant: a run
 * is a pure function of (workload seed, config, fault plan). Table 2,
 * the --jobs byte-equality proofs, fault-plan replay and fuzzer repro
 * minimization all break *silently* if wall-clock time, ambient
 * randomness, unordered-container iteration order or an unguarded
 * data race leaks into a simulation path. TSan and the replay tests
 * catch those hazards dynamically, when a schedule happens to expose
 * them; this linter catches the textual patterns statically, on every
 * build.
 *
 * Deliberately dependency-free: a hand-rolled tokenizer over each
 * translation unit, no LLVM libraries. The rules are heuristic —
 * they aim at this codebase's idioms, not the C++ grammar — and every
 * rule can be locally silenced with a justified suppression:
 *
 *     // xmig-lint: allow(rule-id) -- why this site is safe
 *
 * on the finding's line or the line above. Suppressions without the
 * `-- why` justification are themselves findings (`bad-suppression`).
 *
 * Rule catalogue (docs/analysis.md has the full policy):
 *   no-wallclock       wall-clock / ambient-randomness primitives
 *                      (time, clock, steady_clock, system_clock,
 *                      random_device, rand, ...) outside the
 *                      profiling subsystem (src/obs/prof.*).
 *   unordered-output   range-for / .begin() iteration over a
 *                      std::unordered_{map,set} in a file that also
 *                      writes CSV/JSONL/trace output — iteration
 *                      order is implementation-defined, so sort keys
 *                      at the export boundary instead.
 *   pointer-order      ordering or hashing raw pointer *values*
 *                      where the result can reach output: pointer-
 *                      keyed std::{map,set,unordered_map,
 *                      unordered_set}, std::hash<T*>, and
 *                      (u)intptr_t casts.
 *   naked-mutex        a std::mutex / std::shared_mutex member with
 *                      no XMIG_GUARDED_BY / XMIG_REQUIRES / ... in
 *                      the same file naming it — locks must declare
 *                      what they protect
 *                      (src/util/thread_annotations.hpp).
 *   contract-coverage  an out-of-line non-const method in src/core/
 *                      or src/multicore/ whose body is non-trivial
 *                      yet contains no XMIG_ASSERT / XMIG_AUDIT /
 *                      XMIG_EXPECT site.
 *   journal-in-hot-loop  a direct journal method call
 *                      (x->record(...) / x.setClock(...) /
 *                      x->dumpNow(...)) in src/ outside src/obs/ —
 *                      bare calls bypass the XMIG_JOURNAL macro
 *                      family, so they neither compile out under
 *                      -DXMIG_JOURNAL=OFF nor skip argument
 *                      evaluation when no journal is attached.
 *   alloc-in-hot-loop  heap allocation (new, malloc, push_back,
 *                      make_unique, ...) or per-reference dispatch
 *                      through a virtual seam (x.lookup()/x.store()
 *                      on the OeStore interface, unqualified
 *                      reference()/access() re-entry) inside a
 *                      *Batch function body — the xmig-bolt batched
 *                      hot paths exist to amortize exactly that
 *                      per-reference overhead
 *                      (docs/parallelism.md, "batching").
 *   bad-suppression    a malformed xmig-lint comment (unknown rule
 *                      id, or no justification).
 *
 * Findings not matched by the checked-in baseline
 * (.xmig-lint-baseline) fail the run; the baseline is keyed on
 * (rule, file, source-line text), so line-number drift does not
 * invalidate it. The intended steady state is an *empty* baseline.
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace xmig::lint {

/** One rule violation at a source location. */
struct Finding
{
    std::string file;     ///< path as given (repo-relative in CI)
    unsigned line = 0;    ///< 1-based
    std::string rule;     ///< rule id, e.g. "no-wallclock"
    std::string message;  ///< human-readable explanation
    std::string lineText; ///< trimmed source line (baseline key part)
};

/** All rule ids the tool knows, in reporting order. */
const std::vector<std::string> &allRules();

/** True if `rule` is a known rule id. */
bool knownRule(const std::string &rule);

/**
 * Lint a set of files given as (path, content) pairs. Two passes:
 * the first collects the names of std::unordered_{map,set} variables
 * and members across *all* files (members are declared in headers
 * but iterated in .cpp files), the second runs the per-file rules.
 * Findings are ordered by (file, line, rule).
 */
std::vector<Finding>
lintFiles(const std::vector<std::pair<std::string, std::string>> &files);

/** Convenience wrapper: lint one in-memory file. */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &content);

/** Stable identity of a finding: "rule|file|trimmed line text". */
std::string baselineKey(const Finding &finding);

/**
 * Parse a baseline document (one baselineKey per line; blank lines
 * and lines starting with '#' ignored).
 */
std::multiset<std::string> parseBaseline(const std::string &content);

/** Render findings as a baseline document (sorted, commented). */
std::string renderBaseline(const std::vector<Finding> &findings);

/**
 * Split findings into (new, baselined) against a baseline multiset.
 * Each baseline entry absolves at most one finding.
 */
std::pair<std::vector<Finding>, std::vector<Finding>>
partitionAgainstBaseline(const std::vector<Finding> &findings,
                         std::multiset<std::string> baseline);

/** `file:line: rule: message`, one finding per line. */
std::string renderText(const std::vector<Finding> &findings);

/** JSON array of finding objects. */
std::string renderJson(const std::vector<Finding> &findings);

/** SARIF 2.1.0 document (one run, one result per finding). */
std::string renderSarif(const std::vector<Finding> &findings);

/**
 * Extract the "file" entries of a compile_commands.json document.
 * Tolerant scanner, not a full JSON parser: good for the documents
 * CMake writes. Returns absolute paths as recorded.
 */
std::vector<std::string>
filesFromCompileCommands(const std::string &content);

} // namespace xmig::lint
