/**
 * @file
 * xmig_fuzz: the xmig-forge campaign driver (docs/robustness.md §7).
 *
 * Modes:
 *
 *   campaign (default)
 *     xmig_fuzz --seed S --plans N --jobs J [--repro-dir DIR]
 *               [--no-minimize] [--bench NAME] [--instr I]
 *     Runs an N-plan campaign. The summary on stdout and any repro
 *     files are byte-identical for fixed (S, N) at any J. Exit 1 if
 *     any failure survives.
 *
 *   replay
 *     xmig_fuzz --replay 'PLAN' [--workload-seed W] [--bench NAME]
 *               [--instr I]
 *     Re-runs one (plan, workload) case — the command a repro file
 *     prints — and reports every oracle verdict. Exit 1 on failure.
 *
 *   self-test
 *     xmig_fuzz --self-test [--repro-dir DIR]
 *     Arms the deliberately broken test-only oracle, verifies a
 *     known-bad plan trips it, and proves the minimizer pipeline
 *     reduces it to <= 3 statements, twice, identically. Exit 0 iff
 *     the whole pipeline fired.
 *
 * BenchOptions flags (--seed, --jobs, --instr, --bench, --smoke)
 * keep their usual meaning; --seed is the *campaign* seed.
 */

#include <cstdio>
#include <string>

#include "fuzz/campaign.hpp"
#include "sim/options.hpp"
#include "sim/runner/job_pool.hpp"
#include "sim/runner/sweep.hpp"

using namespace xmig;

namespace {

struct FuzzCli
{
    uint64_t plans = 200;
    std::string reproDir;
    bool minimize = true;
    bool selfTest = false;
    bool verbose = false;
    bool hasReplay = false;
    std::string replayPlan;
    uint64_t workloadSeed = 42;
    bool instrExplicit = false;
};

FuzzCli
parseFuzzFlags(int argc, char **argv)
{
    // BenchOptions::parse already walked argv and ignored these; this
    // pass picks up the fuzz-only flags.
    FuzzCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--plans")
            cli.plans = BenchOptions::parseCount("--plans", next());
        else if (arg == "--repro-dir")
            cli.reproDir = next();
        else if (arg == "--no-minimize")
            cli.minimize = false;
        else if (arg == "--self-test")
            cli.selfTest = true;
        else if (arg == "--verbose")
            cli.verbose = true;
        else if (arg == "--replay") {
            cli.hasReplay = true;
            cli.replayPlan = next();
        } else if (arg == "--workload-seed")
            cli.workloadSeed =
                BenchOptions::parseCount("--workload-seed", next());
        else if (arg == "--instr")
            cli.instrExplicit = true;
    }
    return cli;
}

int
replayMode(const FuzzCli &cli, const BenchOptions &opt,
           uint64_t instructions)
{
    FuzzCase c;
    c.plan = cli.replayPlan;
    c.benchmark = opt.benchmarks.empty() ? "181.mcf"
                                         : opt.benchmarks.front();
    c.workloadSeed = cli.workloadSeed;
    c.instructions = instructions;

    const PropertyHarness harness;
    const CaseResult r = harness.run(c);
    std::string out = "plan=" + c.plan + "\n";
    if (r.failed()) {
        for (const OracleFailure &f : r.failures)
            out += "FAIL oracle=" + f.oracle + " detail=" + f.detail +
                   "\n";
    } else {
        out += "ok: all oracles passed (refs=" +
               std::to_string(r.refs) + ", faults_injected=" +
               std::to_string(r.faultsInjected) + ")\n";
    }
    flushAtomically(out, stdout);
    return r.failed() ? 1 : 0;
}

int
selfTestMode(const FuzzCli &cli, uint64_t instructions)
{
    // A known-bad plan for the broken oracle (it targets both
    // core_off and bus_drop), padded with statements the minimizer
    // must discard.
    FuzzCase bad;
    bad.plan = "seed=9;at=120000:core_off=1;rate=0.001:flip=ae;"
               "at=60000:mig_delay=8;rate=0.0002:bus_drop;"
               "at=200000:core_on=1;rate=0.0001:mig_drop;at=1:flip=tag";
    bad.instructions = instructions;

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);

    const CaseResult r = harness.run(bad);
    bool tripped = false;
    for (const OracleFailure &f : r.failures)
        tripped = tripped || f.oracle == "broken_self_test";
    if (!tripped) {
        flushAtomically("self-test FAILED: broken oracle did not "
                        "fire on the known-bad plan\n", stdout);
        return 1;
    }

    const PlanMinimizer minimizer(harness);
    const MinimizeResult m1 =
        minimizer.minimize(bad, "broken_self_test");
    const MinimizeResult m2 =
        minimizer.minimize(bad, "broken_self_test");

    std::string out;
    out += "minimized: " + m1.minimized.plan + " (probes=" +
           std::to_string(m1.probes) + ")\n";

    const auto stmtCount = [](const std::string &spec) {
        size_t n = spec.empty() ? 0 : 1;
        for (char ch : spec)
            n += ch == ';' ? 1 : 0;
        return n;
    };
    bool ok = m1.stillFails;
    if (!m1.stillFails)
        out += "self-test FAILED: failure did not reproduce under "
               "minimization\n";
    if (stmtCount(m1.minimized.plan) > 3) {
        ok = false;
        out += "self-test FAILED: minimized plan still has " +
               std::to_string(stmtCount(m1.minimized.plan)) +
               " statements (want <= 3)\n";
    }
    if (m1.minimized.plan != m2.minimized.plan ||
        m1.probes != m2.probes) {
        ok = false;
        out += "self-test FAILED: minimization is not deterministic "
               "(got '" + m2.minimized.plan + "' on the second run)\n";
    }

    if (ok && !cli.reproDir.empty()) {
        // Exercise the repro-writing path end to end, so CI can
        // assert the artifact exists.
        CampaignFailure f;
        f.caseIndex = 0;
        f.original = bad;
        f.minimized = m1.minimized;
        f.failure = {"broken_self_test", "self-test pipeline proof"};
        f.probes = m1.probes;
        const std::string path =
            cli.reproDir + "/repro_selftest.txt";
        std::FILE *file = std::fopen(path.c_str(), "wb");
        if (file == nullptr) {
            out += "self-test FAILED: cannot write " + path + "\n";
            ok = false;
        } else {
            const std::string body = renderRepro(f);
            std::fwrite(body.data(), 1, body.size(), file);
            std::fclose(file);
            out += "repro written: " + path + "\n";
        }
    }

    out += ok ? "self-test ok: find -> minimize -> repro pipeline "
                "fired\n"
              : "";
    flushAtomically(out, stdout);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = BenchOptions::parse(argc, argv);
    const FuzzCli cli = parseFuzzFlags(argc, argv);

    // Fuzz cases are short by design (thousands of plans beat one
    // long run); the BenchOptions 2e7 default is for full benchmark
    // sweeps, so default to 150k unless --instr was given.
    const uint64_t instructions =
        cli.instrExplicit ? opt.instructions
                          : (opt.smoke ? 60'000 : 150'000);

    if (cli.hasReplay)
        return replayMode(cli, opt, instructions);
    if (cli.selfTest)
        return selfTestMode(cli, instructions);

    CampaignConfig config;
    config.seed = opt.seed;
    config.plans = opt.smoke && cli.plans == 200 ? 50 : cli.plans;
    config.instructions = instructions;
    config.minimize = cli.minimize;
    config.reproDir = cli.reproDir;
    if (!opt.benchmarks.empty())
        config.benchmark = opt.benchmarks.front();

    const PropertyHarness harness;
    const JobPool pool(opt.jobs);
    if (cli.verbose)
        std::fprintf(stderr,
                     "xmig_fuzz: seed=%llu plans=%llu jobs=%u "
                     "instr=%llu\n",
                     (unsigned long long)config.seed,
                     (unsigned long long)config.plans, pool.jobs(),
                     (unsigned long long)config.instructions);

    const CampaignResult result = runCampaign(config, harness, pool);
    flushAtomically(result.summary(), stdout);
    return result.failures.empty() ? 0 : 1;
}
