/**
 * @file
 * xmig_fuzz: the xmig-forge/xmig-storm fuzzing driver
 * (docs/robustness.md §7-§8).
 *
 * Modes:
 *
 *   campaign (default)
 *     xmig_fuzz --seed S --plans N --jobs J [--repro-dir DIR]
 *               [--no-minimize] [--bench NAME] [--instr I]
 *     Runs an N-plan uniform campaign. The summary on stdout and any
 *     repro files are byte-identical for fixed (S, N) at any J.
 *     Exit 1 if any failure survives.
 *
 *   guided
 *     xmig_fuzz --guided [--storm-workloads] [--batch B] [...]
 *     Same, but the cases come from the coverage-guided generator:
 *     each batch's recovery/injection counters bias the next batch
 *     toward unlit counters. Still byte-stable at any --jobs.
 *
 *   soak
 *     xmig_fuzz --soak --corpus DIR --budget N [--repro-dir DIR]
 *     Standing guided campaign: replays the persisted corpus, spends
 *     the rest of the budget on guided batches, persists every
 *     coverage-novel case content-addressed, minimizes every failure
 *     and attaches an xmig-lens journal to its repro.
 *
 *   replay
 *     xmig_fuzz --replay 'PLAN' [--workload-seed W] [--bench NAME]
 *               [--instr I]
 *     Re-runs one (plan, workload) case — the command a repro file
 *     prints — and reports every oracle verdict. Exit 1 on failure.
 *
 *   self-test
 *     xmig_fuzz --self-test [--repro-dir DIR]
 *     Arms the deliberately broken test-only oracle, verifies a
 *     known-bad plan trips it, and proves the minimizer pipeline
 *     reduces it to <= 3 statements, twice, identically.
 *
 * Unknown flags and malformed values print usage and exit 2 (see
 * fuzz/fuzz_cli.hpp); exit 1 means the fuzzer found real failures.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/fuzz_cli.hpp"
#include "fuzz/soak.hpp"
#include "sim/runner/job_pool.hpp"
#include "sim/runner/sweep.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

namespace {

/**
 * The guided workload pool: the adversarial xmig-storm family plus
 * the case's base benchmark, in fixed order (determinism).
 */
std::vector<std::string>
stormPool(const std::string &benchmark)
{
    std::vector<std::string> pool = adversarialWorkloadNames();
    pool.push_back(benchmark);
    return pool;
}

int
replayMode(const FuzzCliOptions &cli, uint64_t instructions)
{
    FuzzCase c;
    c.plan = cli.replayPlan;
    if (!cli.benchmark.empty())
        c.benchmark = cli.benchmark;
    c.workloadSeed = cli.workloadSeed;
    c.instructions = instructions;

    const PropertyHarness harness;
    const CaseResult r = harness.run(c);
    std::string out = "plan=" + c.plan + "\n";
    if (r.failed()) {
        for (const OracleFailure &f : r.failures)
            out += "FAIL oracle=" + f.oracle + " detail=" + f.detail +
                   "\n";
    } else {
        out += "ok: all oracles passed (refs=" +
               std::to_string(r.refs) + ", faults_injected=" +
               std::to_string(r.faultsInjected) + ")\n";
    }
    flushAtomically(out, stdout);
    return r.failed() ? 1 : 0;
}

int
selfTestMode(const FuzzCliOptions &cli, uint64_t instructions)
{
    // A known-bad plan for the broken oracle (it targets both
    // core_off and bus_drop), padded with statements the minimizer
    // must discard.
    FuzzCase bad;
    bad.plan = "seed=9;at=120000:core_off=1;rate=0.001:flip=ae;"
               "at=60000:mig_delay=8;rate=0.0002:bus_drop;"
               "at=200000:core_on=1;rate=0.0001:mig_drop;at=1:flip=tag";
    bad.instructions = instructions;

    HarnessConfig hc;
    hc.brokenOracle = true;
    const PropertyHarness harness(hc);

    const CaseResult r = harness.run(bad);
    bool tripped = false;
    for (const OracleFailure &f : r.failures)
        tripped = tripped || f.oracle == "broken_self_test";
    if (!tripped) {
        flushAtomically("self-test FAILED: broken oracle did not "
                        "fire on the known-bad plan\n", stdout);
        return 1;
    }

    const PlanMinimizer minimizer(harness);
    const MinimizeResult m1 =
        minimizer.minimize(bad, "broken_self_test");
    const MinimizeResult m2 =
        minimizer.minimize(bad, "broken_self_test");

    std::string out;
    out += "minimized: " + m1.minimized.plan + " (probes=" +
           std::to_string(m1.probes) + ")\n";

    const auto stmtCount = [](const std::string &spec) {
        size_t n = spec.empty() ? 0 : 1;
        for (char ch : spec)
            n += ch == ';' ? 1 : 0;
        return n;
    };
    bool ok = m1.stillFails;
    if (!m1.stillFails)
        out += "self-test FAILED: failure did not reproduce under "
               "minimization\n";
    if (stmtCount(m1.minimized.plan) > 3) {
        ok = false;
        out += "self-test FAILED: minimized plan still has " +
               std::to_string(stmtCount(m1.minimized.plan)) +
               " statements (want <= 3)\n";
    }
    if (m1.minimized.plan != m2.minimized.plan ||
        m1.probes != m2.probes) {
        ok = false;
        out += "self-test FAILED: minimization is not deterministic "
               "(got '" + m2.minimized.plan + "' on the second run)\n";
    }

    if (ok && !cli.reproDir.empty()) {
        // Exercise the repro-writing path end to end, so CI can
        // assert the artifact exists.
        CampaignFailure f;
        f.caseIndex = 0;
        f.original = bad;
        f.minimized = m1.minimized;
        f.failure = {"broken_self_test", "self-test pipeline proof"};
        f.probes = m1.probes;
        const std::string path =
            cli.reproDir + "/repro_selftest.txt";
        std::FILE *file = std::fopen(path.c_str(), "wb");
        if (file == nullptr) {
            out += "self-test FAILED: cannot write " + path + "\n";
            ok = false;
        } else {
            const std::string body = renderRepro(f);
            std::fwrite(body.data(), 1, body.size(), file);
            std::fclose(file);
            out += "repro written: " + path + "\n";
        }
    }

    out += ok ? "self-test ok: find -> minimize -> repro pipeline "
                "fired\n"
              : "";
    flushAtomically(out, stdout);
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const FuzzCliParse parse = parseFuzzCli(argc, argv);
    if (parse.exitCode == 0) {
        std::fputs(fuzzCliUsage(), stdout);
        return 0;
    }
    if (parse.exitCode > 0) {
        std::fprintf(stderr, "xmig_fuzz: %s\n\n%s",
                     parse.error.c_str(), fuzzCliUsage());
        return parse.exitCode;
    }
    const FuzzCliOptions &cli = parse.options;

    // Fuzz cases are short by design (thousands of plans beat one
    // long run); default to 150k instructions unless --instr given.
    const uint64_t instructions =
        cli.instructions != 0 ? cli.instructions
                              : (cli.smoke ? 60'000 : 150'000);

    if (cli.mode == FuzzCliOptions::Mode::Replay)
        return replayMode(cli, instructions);
    if (cli.mode == FuzzCliOptions::Mode::SelfTest)
        return selfTestMode(cli, instructions);

    CampaignConfig config;
    config.seed = cli.seed;
    config.plans = cli.smoke && cli.plans == 200 ? 50 : cli.plans;
    config.instructions = instructions;
    config.minimize = cli.minimize;
    config.reproDir = cli.reproDir;
    if (!cli.benchmark.empty())
        config.benchmark = cli.benchmark;

    const PropertyHarness harness;
    const JobPool pool(cli.jobs);
    if (cli.verbose)
        std::fprintf(stderr,
                     "xmig_fuzz: seed=%llu plans=%llu jobs=%u "
                     "instr=%llu\n",
                     (unsigned long long)config.seed,
                     (unsigned long long)config.plans, pool.jobs(),
                     (unsigned long long)config.instructions);

    if (cli.mode == FuzzCliOptions::Mode::Soak) {
        SoakConfig sc;
        sc.campaign = config;
        sc.budget = cli.smoke && cli.budget == 512 ? 64 : cli.budget;
        sc.batch = cli.batch;
        sc.corpusDir = cli.corpusDir;
        sc.journal = cli.journal;
        if (cli.stormWorkloads)
            sc.guided.workloadPool = stormPool(config.benchmark);
        const SoakResult result = runSoak(sc, harness, pool);
        flushAtomically(result.summary(), stdout);
        return result.failures.empty() ? 0 : 1;
    }

    CampaignResult result;
    if (cli.mode == FuzzCliOptions::Mode::Guided) {
        GuidedConfig guided;
        if (cli.stormWorkloads)
            guided.workloadPool = stormPool(config.benchmark);
        result = runGuidedCampaign(config, guided, harness, pool,
                                   cli.batch);
    } else {
        result = runCampaign(config, harness, pool);
    }
    flushAtomically(result.summary(), stdout);
    return result.failures.empty() ? 0 : 1;
}
