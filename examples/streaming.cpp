/**
 * @file
 * Scenario: a streaming workload — the "do no harm" requirement.
 *
 * Execution migration must not degrade programs it cannot help. A
 * working-set streaming far beyond the total on-chip L2 capacity
 * (here ~10 MB against 4 x 512 KB) gains nothing from migrating, so
 * the machine's two safety valves must keep migrations near zero:
 *  - L2 filtering (section 3.4): the transition filter only moves on
 *    L2 misses — but here that is every access, so the second valve
 *    matters more:
 *  - the finite affinity cache (section 4.2): a >>2 MB working-set
 *    misses the 8k-entry affinity cache constantly, each miss forces
 *    A_e = 0, and a zero affinity never pushes the filter anywhere.
 *
 * Build & run:  ./build/examples/streaming
 */

#include <cstdio>

#include "multicore/machine.hpp"
#include "workloads/workload.hpp"

using namespace xmig;

namespace {

/**
 * Sequential sweeps over a ~10 MB buffer (a DAXPY-ish kernel), with
 * occasional random probes into a small index table — the random
 * component is what tempts an unguarded controller into useless
 * migrations.
 */
class Streaming : public Workload
{
  public:
    Streaming()
    {
        Arena arena;
        x_ = ArenaArray::make(arena, kElems, 8);
        y_ = ArenaArray::make(arena, kElems, 8);
        index_ = ArenaArray::make(arena, 4096, 8);
        info_ = {"streaming", "example",
                 "sequential sweeps over ~10 MB + small index table"};
    }

    const WorkloadInfo &info() const override { return info_; }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        while (!ctx.done()) {
            for (uint64_t i = 0; i < kElems && !ctx.done(); ++i) {
                ctx.load(x_.at(i));
                ctx.load(y_.at(i));
                ctx.op(1);
                ctx.store(y_.at(i));
                if ((i & 7) == 0)
                    ctx.load(index_.at(ctx.rng().below(4096)));
            }
        }
    }

  private:
    static constexpr uint64_t kElems = 640'000; // 2 x 5.1 MB
    ArenaArray x_;
    ArenaArray y_;
    ArenaArray index_;
    WorkloadInfo info_;
};

} // namespace

int
main()
{
    constexpr uint64_t kInstructions = 20'000'000;
    Streaming workload;

    MachineConfig base_cfg;
    base_cfg.numCores = 1;
    MigrationMachine baseline(base_cfg);

    MachineConfig mig_cfg; // paper 4-core machine, all valves on
    MigrationMachine with_valves(mig_cfg);

    MachineConfig no_valves_cfg = mig_cfg;
    no_valves_cfg.controller.l2Filtering = false;
    no_valves_cfg.controller.boundedStore = false;
    no_valves_cfg.controller.samplingCutoff = 31;
    MigrationMachine without_valves(no_valves_cfg);

    std::printf("running %s for %lluM instructions...\n",
                workload.info().name.c_str(),
                (unsigned long long)(kInstructions / 1'000'000));
    TeeSink pair(baseline, with_valves);
    TeeSink all(pair, without_valves);
    workload.run(all, kInstructions);

    auto report = [&](const char *label, const MachineStats &s) {
        std::printf("%-26s L2 misses %9llu   migrations %7llu\n",
                    label, (unsigned long long)s.l2Misses,
                    (unsigned long long)s.migrations);
    };
    report("1-core baseline", baseline.stats());
    report("4-core, paper valves", with_valves.stats());
    report("4-core, valves disabled", without_valves.stats());

    const double suppression =
        with_valves.stats().migrations == 0
            ? static_cast<double>(without_valves.stats().migrations)
            : static_cast<double>(without_valves.stats().migrations) /
                  static_cast<double>(with_valves.stats().migrations);
    std::printf("\nA stream this size cannot benefit from migration; "
                "the paper's valves (L2\nfiltering + finite affinity "
                "cache + sampling) keep the machine quiet — a\n"
                "%.0fx migration suppression versus the unguarded "
                "controller — while the\nL2 miss count stays at the "
                "baseline.\n", suppression);
    return 0;
}
