/**
 * @file
 * Scenario: record a workload trace once, sweep configurations over
 * the recording.
 *
 * Kernel execution dominates experiment time when comparing many
 * controller configurations. The trace-file support (mem/trace_io)
 * lets you pay that cost once: record the reference stream to disk,
 * then replay it into as many differently-configured machines as you
 * like — with bit-identical inputs, so every difference in the
 * results is caused by the configuration.
 *
 * Usage: ./build/examples/record_replay [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mem/trace_io.hpp"
#include "multicore/machine.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "179.art";
    const uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000'000;
    const std::string path = "/tmp/xmig_example_trace.bin";

    // 1. Record.
    std::printf("recording %s (%lluM instructions) to %s ...\n",
                benchmark.c_str(),
                (unsigned long long)(instructions / 1'000'000),
                path.c_str());
    {
        TraceWriter writer(path);
        makeWorkload(benchmark)->run(writer, instructions);
        std::printf("  %llu references recorded\n",
                    (unsigned long long)writer.recordsWritten());
    }

    // 2. Sweep: replay the same trace into several machines.
    struct Variant
    {
        const char *label;
        MachineConfig config;
    };
    std::vector<Variant> variants;
    {
        Variant v;
        v.label = "1-core baseline";
        v.config.numCores = 1;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "4-core, paper config";
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "4-core, 20-bit filters";
        v.config.controller.filterBits = 20;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "4-core, no sampling";
        v.config.controller.samplingCutoff = 31;
        v.config.controller.affinityCache.entries = 32 * 1024;
        variants.push_back(v);
    }

    AsciiTable table({"configuration", "instr/L2miss", "migrations"});
    for (const Variant &variant : variants) {
        MigrationMachine machine(variant.config);
        TraceReader reader(path);
        reader.replay(machine);
        if (!reader.ok())
            XMIG_FATAL("trace replay failed: %s",
                       reader.status().message.c_str());
        char migs[24];
        std::snprintf(migs, sizeof(migs), "%llu",
                      (unsigned long long)machine.stats().migrations);
        table.addRow({variant.label,
                      perEvent(machine.stats().instructions,
                               machine.stats().l2Misses),
                      migs});
    }
    std::printf("\n");
    std::fputs(table.render("Configuration sweep over one recorded "
                            "trace").c_str(),
               stdout);
    std::remove(path.c_str());
    return 0;
}
