/**
 * @file
 * Scenario: a pointer-chasing workload (the 181.mcf story).
 *
 * Demonstrates two things:
 *  - how to define your OWN workload against the Workload API (a
 *    linked-data-structure traversal, the class of programs the
 *    paper's conclusion highlights);
 *  - the full Table-2 methodology: run it on a single-core baseline
 *    and on the 4-core migration machine, compare L2 misses, and
 *    compute the break-even migration penalty.
 *
 * Build & run:  ./build/examples/pointer_chase
 */

#include <cstdio>
#include <vector>

#include "multicore/cost_model.hpp"
#include "multicore/machine.hpp"
#include "workloads/workload.hpp"

using namespace xmig;

namespace {

/**
 * A ring of list nodes (~1.25 MB) traversed in pointer order, with a
 * field read per node — too big for one 512-KB L2, comfortable in
 * four. The node order is shuffled in memory, so there is no spatial
 * pattern for a prefetcher; only the *temporal* circular structure
 * remains, which is exactly what the affinity algorithm exploits.
 */
class PointerChase : public Workload
{
  public:
    PointerChase()
    {
        Arena arena;
        nodes_ = ArenaArray::make(arena, kNodes, 64); // one per line
        // Build a shuffled ring.
        std::vector<uint32_t> order(kNodes);
        for (uint64_t i = 0; i < kNodes; ++i)
            order[i] = static_cast<uint32_t>(i);
        Rng rng(2024);
        for (uint64_t i = kNodes - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(i + 1)]);
        next_.resize(kNodes);
        for (uint64_t i = 0; i < kNodes; ++i)
            next_[order[i]] = order[(i + 1) % kNodes];
        info_ = {"pointer-chase", "example",
                 "shuffled 1.25 MB linked ring, traversed repeatedly"};
    }

    const WorkloadInfo &info() const override { return info_; }

  protected:
    void
    execute(EmitCtx &ctx) override
    {
        uint32_t node = 0;
        while (!ctx.done()) {
            ctx.loadPtr(nodes_.at(node));   // node->next
            ctx.load(nodes_.at(node, 16));  // node->payload
            ctx.op(2);                      // work on the payload
            if (ctx.rng().chance(0.05))
                ctx.store(nodes_.at(node, 32));
            node = next_[node];
        }
    }

  private:
    static constexpr uint64_t kNodes = 20'000;
    ArenaArray nodes_;
    std::vector<uint32_t> next_;
    WorkloadInfo info_;
};

} // namespace

int
main()
{
    constexpr uint64_t kInstructions = 30'000'000;

    PointerChase workload;

    MachineConfig base_cfg;
    base_cfg.numCores = 1;
    MigrationMachine baseline(base_cfg);

    MachineConfig mig_cfg; // defaults = the paper's 4-core machine
    MigrationMachine migration(mig_cfg);

    std::printf("running %s for %lluM instructions on 1-core and "
                "4-core machines...\n",
                workload.info().name.c_str(),
                (unsigned long long)(kInstructions / 1'000'000));
    TeeSink tee(baseline, migration);
    workload.run(tee, kInstructions);

    const auto &b = baseline.stats();
    const auto &m = migration.stats();
    std::printf("\n              baseline   migration\n");
    std::printf("L2 misses   %10llu  %10llu\n",
                (unsigned long long)b.l2Misses,
                (unsigned long long)m.l2Misses);
    std::printf("migrations  %10s  %10llu\n", "-",
                (unsigned long long)m.migrations);
    std::printf("\nL2-miss ratio: %.2f (paper's best cases: "
                "0.03-0.17)\n",
                static_cast<double>(m.l2Misses) /
                    static_cast<double>(b.l2Misses));

    MigrationTradeoff t;
    t.instructions = m.instructions;
    t.l2MissesBaseline = b.l2Misses;
    t.l2MissesMigration = m.l2Misses;
    t.migrations = m.migrations;
    std::printf("break-even P_mig: %.0f L2-miss penalties per "
                "migration\n", breakEvenPmig(t));
    for (double pmig : {10.0, 60.0}) {
        TimingParams tp;
        tp.pmig = pmig;
        std::printf("modeled speedup at P_mig = %3.0f: %.2fx\n", pmig,
                    estimatedSpeedup(t, tp));
    }
    return 0;
}
