/**
 * @file
 * CLI tool: print the "normal vs split" LRU stack profile (the
 * Figures 4/5 methodology) for any built-in benchmark.
 *
 * Usage:  ./build/examples/profile_workload [benchmark] [instr]
 *         ./build/examples/profile_workload 181.mcf 20000000
 *
 * Run without arguments for 179.art and the list of benchmarks.
 */

#include <cstdio>
#include <cstdlib>

#include "sim/stack_profile.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "179.art";
    StackProfileParams params;
    if (argc > 2)
        params.instructionsPerBenchmark =
            std::strtoull(argv[2], nullptr, 10);
    else
        params.instructionsPerBenchmark = 10'000'000;

    std::printf("available benchmarks:");
    for (const auto &n : allWorkloadNames())
        std::printf(" %s", n.c_str());
    std::printf("\n\nprofiling %s over %llu instructions...\n\n",
                name.c_str(),
                (unsigned long long)params.instructionsPerBenchmark);

    const StackProfileResult r = runStackProfile(name, params);

    std::printf("%-8s  %-10s  %-10s  bar: '#' normal misses, "
                "'.' removed by splitting\n", "size", "normal p1",
                "split p4");
    for (size_t i = 0; i < r.plotSizes.size(); ++i) {
        std::printf("%-8s  %-10.3f  %-10.3f  ",
                    sizeLabel(r.plotSizes[i]).c_str(), r.p1[i],
                    r.p4[i]);
        const int total = static_cast<int>(r.p1[i] * 50);
        const int split = static_cast<int>(r.p4[i] * 50);
        for (int c = 0; c < split; ++c)
            std::putchar('#');
        for (int c = split; c < total; ++c)
            std::putchar('.');
        std::putchar('\n');
    }
    std::printf("\ntransition frequency: %.4f   footprint: %s   "
                "splittability gap: %.3f\n", r.transitionFrequency,
                sizeLabel(r.footprintLines * 64).c_str(), r.maxGap());
    return 0;
}
