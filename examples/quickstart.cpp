/**
 * @file
 * Quickstart: split a working-set with the affinity algorithm.
 *
 * This is the smallest useful tour of the public API:
 *  1. make an O_e store (the "affinity cache");
 *  2. make a 2-way splitter (affinity engine + transition filter);
 *  3. feed it a reference stream;
 *  4. read back which subset each line belongs to.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/oe_store.hpp"
#include "core/splitter.hpp"
#include "workloads/synthetic.hpp"

using namespace xmig;

int
main()
{
    // A working-set of 4000 lines referenced circularly: the classic
    // splittable behavior (think: a big array scanned repeatedly).
    constexpr uint64_t kLines = 4000;
    CircularStream stream(kLines);

    // Unlimited O_e storage; swap in AffinityCacheStore for the
    // finite, hardware-sized variant.
    UnboundedOeStore store(/*affinity_bits=*/16);

    TwoWaySplitter::Config config;
    config.engine.windowSize = 100; // |R|
    config.filterBits = 20;
    TwoWaySplitter splitter(config, store);

    // Let the algorithm watch the program run for a while.
    std::printf("training on 1M references...\n");
    for (int t = 0; t < 1'000'000; ++t)
        splitter.onReference(stream.next());

    // Where did each line land?
    uint64_t subset0 = 0, subset1 = 0;
    std::vector<unsigned> assignment(kLines);
    for (uint64_t line = 0; line < kLines; ++line) {
        const SplitDecision d = splitter.onReference(line);
        assignment[line] = d.subset;
        (d.subset == 0 ? subset0 : subset1) += 1;
    }
    uint64_t boundaries = 0;
    for (uint64_t line = 1; line < kLines; ++line)
        boundaries += assignment[line] != assignment[line - 1] ? 1 : 0;

    std::printf("subset sizes: %llu vs %llu (balanced!)\n",
                (unsigned long long)subset0,
                (unsigned long long)subset1);
    std::printf("transition frequency over training: %.5f "
                "(bound: 1 per 2|R| = %.5f)\n",
                static_cast<double>(splitter.transitions()) / 1'000'000,
                1.0 / 200);
    std::printf("the split is contiguous: only %llu boundaries over "
                "4000 lines.\n", (unsigned long long)boundaries);
    std::printf("\nThat is the whole trick: bind each subset to one "
                "core's L2 and migrate\nexecution when the filter "
                "flips sign — the program now enjoys the union\nof "
                "both caches. See examples/pointer_chase.cpp for the "
                "full machine.\n");
    return 0;
}
