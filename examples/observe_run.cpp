/**
 * @file
 * xmig-scope end to end: metrics registry + time-series sampler +
 * Chrome trace on one quadcore run.
 *
 * Runs a single benchmark through the Table 2 machine pair with the
 * full observability stack attached, then prints where everything
 * landed and a short preview of each artifact:
 *
 *  - metrics JSONL: every counter of both machines, hierarchically
 *    named (feed to jq / pandas);
 *  - time-series CSV: A_R, Delta, filter value, migration and miss
 *    rates, per-core L2 occupancies sampled every N references
 *    (plot for Figure-3-style views of the algorithm at work);
 *  - Chrome trace JSON: migrations, affinity-cache evictions and
 *    shadow-audit disarms on a simulated-time axis — open it in
 *    chrome://tracing or https://ui.perfetto.dev.
 *
 * Build & run:  ./build/examples/observe_run
 *   (or pass --bench 179.art --instr 2000000 --sample-every 5000
 *    --metrics-out m.jsonl --samples-out s.csv --trace-out t.json)
 */

#include <cstdio>

#include "obs/prof.hpp"
#include "sim/observe.hpp"
#include "sim/options.hpp"
#include "sim/quadcore.hpp"
#include "util/stats.hpp"

using namespace xmig;

int
main(int argc, char **argv)
{
    BenchOptions opt = BenchOptions::parse(argc, argv);
    // Observability on by default: this example exists to produce the
    // three artifacts, so unset outputs get filenames rather than
    // being disabled.
    if (opt.metricsOut.empty())
        opt.metricsOut = "observe_metrics.jsonl";
    if (opt.samplesOut.empty())
        opt.samplesOut = "observe_samples.csv";
    if (opt.traceOut.empty())
        opt.traceOut = "observe_trace.json";
    if (opt.instructions == 20'000'000 && argc == 1)
        opt.instructions = 4'000'000; // quick by default
    if (opt.sampleEvery == 0)
        opt.sampleEvery = 2'000;

    const std::string bench =
        opt.benchmarks.empty() ? "179.art" : opt.benchmarks.front();

    QuadcoreParams params;
    params.instructionsPerBenchmark = opt.instructions;
    params.warmupInstructions = opt.warmup;
    params.seed = opt.seed;
    params.machine.faultPlan = opt.faultPlan;

    RunObservatory observatory(observeOptionsOf(opt));
    const QuadcoreRow row = runQuadcore(bench, params, &observatory);

    std::printf("benchmark %s: %llu instructions, %llu migrations, "
                "L2-miss ratio %.2f\n",
                row.name.c_str(),
                (unsigned long long)row.instructions,
                (unsigned long long)row.migrations, row.missRatio());

    // Note: the registry's pointers reached into machines that only
    // lived inside runQuadcore(), so values may not be *read* here —
    // the JSONL was exported by finish() while they were alive.
    std::printf("\nmetrics: %zu registered -> %s\n",
                observatory.registry().size(), opt.metricsOut.c_str());
    std::printf("  e.g. machine.l2_misses = %llu, "
                "machine.controller.migrations = %llu\n",
                (unsigned long long)row.l2Misses4x,
                (unsigned long long)row.migrations);

    const auto &sampler = observatory.sampler();
    std::printf("time series: %zu samples x %zu columns (every %llu "
                "refs) -> %s\n",
                sampler.samples(), sampler.columnNames().size(),
                (unsigned long long)sampler.config().sampleEvery,
                opt.samplesOut.c_str());

    std::printf("trace: -> %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n", opt.traceOut.c_str());

    // Wall-clock phase profile of the run we just did.
    std::fputs(obs::ProfileRegistry::instance().report().c_str(),
               stdout);
    return 0;
}
